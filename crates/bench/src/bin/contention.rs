//! Contention sweep over a shared LAN segment, with the shared-media queuing
//! model on and (ablation) off.
//!
//! ```text
//! cargo run -p ohpc-bench --release --bin contention -- [--network atm|ethernet|fast-ethernet]
//! ```

use ohpc_bench::contention::run_sweep;
use ohpc_bench::fig5::Network;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut network = Network::Ethernet;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--network" => {
                i += 1;
                network = Network::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| {
                        eprintln!("unknown network; use atm | ethernet | fast-ethernet");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("# Contention sweep over shared {} segment", network.name());
    let points = run_sweep(network, &[1, 2, 4, 8]);

    println!("network,clients,queuing,aggregate_mbps,per_client_mbps,queue_wait_frac");
    for p in &points {
        println!(
            "{},{},{},{:.4},{:.4},{:.4}",
            network.name(),
            p.clients,
            p.queuing,
            p.aggregate_mbps,
            p.per_client_mbps,
            p.queue_wait_frac
        );
    }

    eprintln!();
    eprintln!("clients  queuing  aggregate Mbps  per-client Mbps  wait frac");
    for p in &points {
        eprintln!(
            "{:>7}  {:<7}  {:>14.2}  {:>15.2}  {:>9.2}",
            p.clients,
            if p.queuing { "on" } else { "off" },
            p.aggregate_mbps,
            p.per_client_mbps,
            p.queue_wait_frac
        );
    }
    eprintln!();
    eprintln!(
        "VERDICT: with queuing the aggregate saturates at the segment's capacity; \
         the no-queuing ablation sails past it — the contention behaviour comes \
         from the shared-media model, not protocol costs"
    );
}
