//! Emits `BENCH_selection.json`: protocol-selection cost, cached (per-GP
//! selection cache hit path) vs uncached (full worst-case OR-table walk),
//! at table sizes 2/8/32.
//!
//! Usage: `cargo run --release -p ohpc-bench --bin bench_selection_json
//! [path] [--gate]` (default path `BENCH_selection.json`). With `--gate`
//! (the CI configuration) the run fails unless:
//!
//! * the cached-hit cost is *flat* in table size — the 32-row cached median
//!   must stay within `FLATNESS_SLACK`× of the 2-row cached median (the
//!   whole point of the cache is that hits never walk the table);
//! * the cached path is at least `MIN_SPEEDUP`× cheaper than the uncached
//!   32-row walk.
//!
//! Both conditions are re-measured once before declaring a breach: a loaded
//! CI runner can smear a single run of sub-microsecond timings.

use ohpc_bench::selection_cost::{measure, selection_artifact, SelectionSample, TABLE_SIZES};

/// Timing batches per point; the median defeats scheduling outliers.
const ROUNDS: usize = 21;
/// Selections per timing batch.
const ITERS: u32 = 2_000;

/// A truly size-dependent cached cost (a hidden walk) would scale ~16× from
/// 2 to 32 rows; 3× tolerates cache-line and allocator noise while still
/// catching any O(n) regression.
const FLATNESS_SLACK: f64 = 3.0;
/// Required cached-vs-uncached advantage at 32 rows (the acceptance bar is
/// 5×; the walk allocates per row, so real runs land far above this).
const MIN_SPEEDUP: f64 = 5.0;

fn sweep() -> Vec<SelectionSample> {
    TABLE_SIZES.iter().map(|&n| measure(n, ROUNDS, ITERS)).collect()
}

fn gate_breach(samples: &[SelectionSample]) -> Option<String> {
    let first = samples.first()?;
    let last = samples.last()?;
    if last.cached_ns > first.cached_ns * FLATNESS_SLACK {
        return Some(format!(
            "cached cost grows with table size: {:.1} ns at {} rows vs {:.1} ns at {} rows \
             (limit {FLATNESS_SLACK}x) — the hit path is walking the table",
            last.cached_ns, last.table_len, first.cached_ns, first.table_len
        ));
    }
    if last.cached_ns * MIN_SPEEDUP > last.uncached_ns {
        return Some(format!(
            "cached path only {:.1}x cheaper than the uncached {}-row walk \
             ({:.1} ns vs {:.1} ns, need {MIN_SPEEDUP}x)",
            if last.cached_ns > 0.0 { last.uncached_ns / last.cached_ns } else { 0.0 },
            last.table_len,
            last.cached_ns,
            last.uncached_ns
        ));
    }
    None
}

fn main() {
    if std::env::var_os("OHPC_SELECTION_CACHE").is_some_and(|v| {
        matches!(v.to_str(), Some("0") | Some("off") | Some("false"))
    }) {
        eprintln!("OHPC_SELECTION_CACHE is off — this benchmark measures the cache; unset it");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_selection.json".to_string());

    let mut samples = sweep();
    if gate {
        if let Some(breach) = gate_breach(&samples) {
            // One re-measure before failing: these are nanosecond-scale
            // medians, and one noisy run on a shared runner can smear them.
            eprintln!("{breach} — re-measuring once");
            samples = sweep();
        }
    }

    for s in &samples {
        println!(
            "{:>3} rows: cached {:>8.1} ns   uncached {:>9.1} ns   ({:.1}x)",
            s.table_len,
            s.cached_ns,
            s.uncached_ns,
            if s.cached_ns > 0.0 { s.uncached_ns / s.cached_ns } else { 0.0 }
        );
    }

    let json = selection_artifact(&samples);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} ({} bytes)", json.len());

    if gate {
        if let Some(breach) = gate_breach(&samples) {
            eprintln!("GATE FAIL: {breach}");
            std::process::exit(1);
        }
        let first = &samples[0];
        let last = &samples[samples.len() - 1];
        println!(
            "gates pass: cached flat ({:.1} ns @ {} rows vs {:.1} ns @ {} rows), \
             {:.1}x cheaper than the uncached walk",
            last.cached_ns,
            last.table_len,
            first.cached_ns,
            first.table_len,
            last.uncached_ns / last.cached_ns
        );
    }
}
