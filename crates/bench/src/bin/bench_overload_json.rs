//! Emits `BENCH_overload.json`: the sustained-overload matrix — admission
//! shedding on vs off on the bounded work-stealing pool, plus the legacy
//! thread-per-request baseline at a smaller burst.
//!
//! Usage: `cargo run --release -p ohpc-bench --bin bench_overload_json
//! [path] [--gate]` (default path `BENCH_overload.json`). With `--gate`
//! (the CI configuration) the run fails unless:
//!
//! * shedding improves all-replies p99 (`shed_on.p99 < shed_off.p99`) —
//!   re-measured once before declaring a breach, since a loaded CI runner
//!   can smear any single run;
//! * the work-stealing scenarios keep the process thread count near the
//!   worker cap (no thread explosion at 10k offered concurrency).
//!
//! `OHPC_OVERLOAD_OFFERED` overrides the burst size (default 10000).

use std::time::Duration;

use ohpc_bench::overload::{run_overload, overload_artifact, ExecutorKind, OverloadConfig};

const WORKERS: usize = 8;
const LIMIT: usize = 256;

/// Harness + runtime threads that are not dispatch workers: main, sender,
/// census, the context's accept and reader threads, telemetry flight
/// recorder, and slack for the test runner. The gate only needs to separate
/// "about the worker cap" from "about the burst size" (10k).
const THREAD_SLACK: usize = 48;

fn offered_from_env() -> usize {
    std::env::var("OHPC_OVERLOAD_OFFERED")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000)
}

fn shed_pair(offered: usize) -> (ohpc_bench::overload::OverloadSample, ohpc_bench::overload::OverloadSample) {
    let delay = Duration::from_micros(200);
    let on = run_overload(&OverloadConfig {
        offered,
        workers: WORKERS,
        admission_limit: Some(LIMIT),
        delay,
        executor: ExecutorKind::WorkStealing,
    });
    let off = run_overload(&OverloadConfig {
        offered,
        workers: WORKERS,
        admission_limit: None,
        delay,
        executor: ExecutorKind::WorkStealing,
    });
    (on, off)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    let offered = offered_from_env();
    let (mut on, mut off) = shed_pair(offered);
    if gate && on.p99_ms >= off.p99_ms {
        // One re-measure before declaring a regression: scheduling noise on
        // a shared runner can smear a single burst.
        eprintln!(
            "shed-on p99 {:.3} ms >= shed-off p99 {:.3} ms — re-measuring once",
            on.p99_ms, off.p99_ms
        );
        let pair = shed_pair(offered);
        on = pair.0;
        off = pair.1;
    }
    // The legacy baseline runs a deliberately smaller burst: its whole
    // problem is that offered concurrency becomes thread count.
    let legacy = run_overload(&OverloadConfig {
        offered: offered.min(512),
        workers: WORKERS,
        admission_limit: None,
        delay: Duration::from_micros(200),
        executor: ExecutorKind::ThreadPerRequest,
    });

    for (name, s) in [("shed_on", &on), ("shed_off", &off), ("legacy", &legacy)] {
        println!(
            "{name:>9}: {} offered, served={} shed={} p50={:.3}ms p99={:.3}ms \
             served_p99={:.3}ms peak_threads={} ({})",
            s.offered, s.served, s.shed, s.p50_ms, s.p99_ms, s.served_p99_ms,
            s.peak_threads, s.executor
        );
    }

    let json = overload_artifact(&[
        ("shed_on", on.clone()),
        ("shed_off", off.clone()),
        ("legacy_thread_per_request", legacy.clone()),
    ]);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} ({} bytes)", json.len());

    if gate {
        let mut failed = false;
        if on.p99_ms >= off.p99_ms {
            eprintln!(
                "GATE FAIL: shedding did not improve p99 ({:.3} ms on vs {:.3} ms off)",
                on.p99_ms, off.p99_ms
            );
            failed = true;
        }
        // Thread census is Linux-only; an unavailable /proc reads as 0,
        // which can never breach the cap, so no separate platform check.
        for (name, s) in [("shed_on", &on), ("shed_off", &off)] {
            if s.peak_threads > WORKERS + THREAD_SLACK {
                eprintln!(
                    "GATE FAIL: {name} peaked at {} threads (cap {} workers + {} slack) — \
                     dispatch is spawning per request again",
                    s.peak_threads, WORKERS, THREAD_SLACK
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gates pass: p99 {:.3} ms (shed on) < {:.3} ms (shed off); \
             peak {} threads within cap",
            on.p99_ms, off.p99_ms, on.peak_threads.max(off.peak_threads)
        );
    }
}
