//! Prints the capability-overhead table backing the paper's §5 claim that
//! "even for fast networks such as ATM, the capabilities based approach adds
//! only a small amount of overhead".
//!
//! ```text
//! cargo run -p ohpc-bench --release --bin overhead_table
//! ```

use ohpc_bench::overhead::run;

fn main() {
    let sizes = [64usize, 1024, 16 * 1024, 256 * 1024, 4 * 1024 * 1024];
    eprintln!("# Capability CPU cost vs simulated wire time");
    let rows = run(&sizes, 20);

    println!("chain,payload_bytes,cpu_us,atm_wire_us,ethernet_wire_us,atm_overhead_pct");
    for r in &rows {
        println!(
            "{},{},{:.2},{:.2},{:.2},{:.2}",
            r.label,
            r.payload_bytes,
            r.cpu_us,
            r.atm_wire_us,
            r.ethernet_wire_us,
            r.atm_overhead_pct()
        );
    }

    eprintln!();
    eprintln!(
        "{:<20} {:>12} {:>12} {:>14} {:>12}",
        "chain", "payload", "cpu (us)", "ATM wire (us)", "overhead %"
    );
    for r in &rows {
        eprintln!(
            "{:<20} {:>12} {:>12.1} {:>14.1} {:>12.2}",
            r.label,
            r.payload_bytes,
            r.cpu_us,
            r.atm_wire_us,
            r.atm_overhead_pct()
        );
    }
}
