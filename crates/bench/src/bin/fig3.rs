//! Replays the paper's Figure 3 scenario: two clients sharing one GP, with
//! authentication applying only to the off-LAN client, before and after the
//! server migrates.
//!
//! ```text
//! cargo run -p ohpc-bench --release --bin fig3
//! ```

use ohpc_bench::fig3::run;
use ohpc_netsim::LinkProfile;

fn main() {
    eprintln!("# Figure 3 scenario — asymmetric authentication with one shared GP");
    let phases = run(LinkProfile::fast_ethernet());

    println!("phase,p1_selected,p2_selected");
    for p in &phases {
        println!("{},{},{}", p.label, p.p1_selected, p.p2_selected);
    }

    eprintln!();
    for p in &phases {
        eprintln!(
            "{:<17}  P1(local LAN): {:<25} P2(remote LAN): {}",
            p.label, p.p1_selected, p.p2_selected
        );
    }
    let swapped = phases.len() == 2
        && phases[0].p1_selected == phases[1].p2_selected
        && phases[0].p2_selected == phases[1].p1_selected;
    eprintln!();
    eprintln!(
        "VERDICT: roles {} after migration (paper: 'for P2, the authentication \
         capability becomes non-applicable … while for P1 … the glue protocol is chosen')",
        if swapped { "SWAPPED exactly" } else { "DID NOT swap" }
    );
}
