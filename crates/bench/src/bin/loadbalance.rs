//! Load-balancing payoff timeline (§4.3): response time before/after a load
//! spike, with and without the high-water-mark balancer.
//!
//! ```text
//! cargo run -p ohpc-bench --release --bin loadbalance
//! ```

use ohpc_bench::loadbalance::{run, tail_latency, Params};

fn main() {
    let p = Params::default();
    eprintln!(
        "# Load-balancing timeline: spike of {} load units on node0 at window {}",
        p.spike_load, p.spike_at
    );

    let with = run(true, p);
    let without = run(false, p);

    println!("window,t_virtual_s,balanced_host,balanced_ms,unbalanced_host,unbalanced_ms,home_load");
    for (a, b) in with.iter().zip(without.iter()) {
        println!(
            "{},{:.4},{},{:.4},{},{:.4},{:.2}",
            a.window, a.t_virtual_s, a.host, a.mean_response_ms, b.host, b.mean_response_ms, b.home_load
        );
    }

    eprintln!();
    eprintln!("window  host(balanced)  balanced ms  unbalanced ms   home load");
    for (a, b) in with.iter().zip(without.iter()) {
        let marker = if a.host != "node0" { " <- migrated" } else { "" };
        eprintln!(
            "{:>6}  {:<14}  {:>11.3}  {:>13.3}  {:>9.2}{}",
            a.window, a.host, a.mean_response_ms, b.mean_response_ms, b.home_load, marker
        );
    }
    eprintln!();
    eprintln!(
        "VERDICT: post-spike tail latency {:.3} ms (balanced) vs {:.3} ms (unbalanced) — {:.1}x better",
        tail_latency(&with),
        tail_latency(&without),
        tail_latency(&without) / tail_latency(&with)
    );
}
