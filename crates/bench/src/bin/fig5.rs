//! Regenerates the paper's Figure 5: bandwidth vs array size for the four
//! protocol configurations.
//!
//! ```text
//! cargo run -p ohpc-bench --release --bin fig5 -- [--network atm|ethernet|fast-ethernet] [--csv]
//! ```

use ohpc_bench::fig5::{default_sizes, run, verdicts, Config, Network};
use ohpc_bench::plot::{loglog, Series};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut network = Network::Atm;
    let mut csv_only = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--network" => {
                i += 1;
                network = Network::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| {
                        eprintln!("unknown network; use atm | ethernet | fast-ethernet");
                        std::process::exit(2);
                    });
            }
            "--csv" => csv_only = true,
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let sizes = default_sizes();
    eprintln!(
        "# Figure 5 reproduction — network={}, sizes 1..{} ints, 4 configurations",
        network.name(),
        sizes.last().unwrap()
    );
    let measurements = run(network, &sizes);

    println!("network,config,elements,payload_bytes,iterations,bandwidth_mbps");
    for m in &measurements {
        println!(
            "{},{},{},{},{},{:.4}",
            network.name(),
            m.config.label(),
            m.elements,
            m.payload_bytes,
            m.iterations,
            m.bandwidth_mbps
        );
    }

    if !csv_only {
        let series: Vec<Series> = Config::all()
            .iter()
            .map(|c| Series {
                label: c.label().to_string(),
                glyph: c.glyph(),
                points: measurements
                    .iter()
                    .filter(|m| m.config == *c)
                    .map(|m| (m.payload_bytes as f64, m.bandwidth_mbps))
                    .collect(),
            })
            .collect();
        eprintln!();
        eprintln!(
            "{}",
            loglog(&series, 72, 22, "payload size (bytes)", "bandwidth (Mbps)")
        );
        for v in verdicts(&measurements) {
            eprintln!("VERDICT: {v}");
        }
    }
}
