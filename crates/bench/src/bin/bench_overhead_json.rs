//! Emits `BENCH_overhead.json`: per-figure medians from the fig3/fig4/fig5
//! and capability-overhead harnesses, as one machine-readable artifact.
//!
//! Usage: `cargo run --release -p ohpc-bench --bin bench_overhead_json [path]`
//! (default output path: `BENCH_overhead.json` in the current directory).

fn main() {
    let path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_overhead.json".to_string());
    let json = ohpc_bench::artifact::overhead_artifact();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} ({} bytes)", json.len());
}
