//! Emits `BENCH_overhead.json`: per-figure medians from the fig3/fig4/fig5
//! and capability-overhead harnesses, plus the tracing-on/off A/B, as one
//! machine-readable artifact.
//!
//! Usage:
//! `cargo run --release -p ohpc-bench --bin bench_overhead_json [path] [--max-tracing-overhead-pct N]`
//! (default output path: `BENCH_overhead.json` in the current directory).
//!
//! With `--max-tracing-overhead-pct N` the process exits non-zero when the
//! always-on flight recorder costs more than N% median latency on the fig3
//! path — the CI gate for "tracing is invisible next to the work".

fn main() {
    let mut path = "BENCH_overhead.json".to_string();
    let mut max_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-tracing-overhead-pct" {
            let v = args.next().and_then(|v| v.parse().ok());
            let Some(v) = v else {
                eprintln!("--max-tracing-overhead-pct needs a numeric value");
                std::process::exit(1);
            };
            max_pct = Some(v);
        } else {
            path = a;
        }
    }

    let art = ohpc_bench::artifact::overhead_artifact();
    if let Err(e) = std::fs::write(&path, &art.json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} ({} bytes)", art.json.len());
    if let Some(max) = max_pct {
        let mut pct = art.tracing_overhead_pct;
        // A shared runner can spend seconds in a skewed phase that poisons
        // one whole A/B; re-measure before failing. A real regression is
        // over budget on every attempt.
        for attempt in 2..=3 {
            if pct <= max {
                break;
            }
            eprintln!(
                "tracing overhead {pct:.2}% over the {max:.2}% budget; \
                 re-measuring ({attempt}/3)"
            );
            pct = ohpc_bench::artifact::remeasure_tracing_overhead_pct();
        }
        if pct > max {
            eprintln!(
                "tracing overhead {pct:.2}% exceeds the {max:.2}% budget on the fig3 path"
            );
            std::process::exit(2);
        }
        println!("tracing overhead {pct:.2}% within the {max:.2}% budget");
    }
}
