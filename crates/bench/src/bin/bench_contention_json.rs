//! Emits `BENCH_contention.json`: concurrent-clients throughput of the
//! multiplexed per-endpoint channel vs the serialized-wire baseline.
//!
//! Usage: `cargo run --release -p ohpc-bench --bin bench_contention_json
//! [path]` (default output path: `BENCH_contention.json` in the current
//! directory). `OHPC_CONTENTION_CLIENTS=1,4,16` overrides the client sweep.

use std::time::Duration;

use ohpc_bench::mux_contention::{client_counts_from_env, contention_artifact, sweep};

fn main() {
    let path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_contention.json".to_string());
    let delay = Duration::from_millis(1);
    let counts = client_counts_from_env();
    let rows = sweep(&counts, 40, delay);
    for row in &rows {
        println!(
            "clients={:>3}  mux={:>8.1} req/s  serialized={:>8.1} req/s  speedup={:.2}x",
            row.clients, row.mux.throughput_rps, row.serialized.throughput_rps, row.speedup()
        );
    }
    let json = contention_artifact(&rows, delay);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} ({} bytes)", json.len());
}
