//! Regenerates the paper's Figure 4 experiment: the S1→S2→S3→S4 migration
//! walk with per-hop protocol selection and bandwidth.
//!
//! ```text
//! cargo run -p ohpc-bench --release --bin fig4 -- [--network atm|ethernet|fast-ethernet]
//! ```

use ohpc_bench::fig4::{expected_selections, run};
use ohpc_bench::fig5::Network;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut network = Network::Atm;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--network" => {
                i += 1;
                network = Network::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| {
                        eprintln!("unknown network; use atm | ethernet | fast-ethernet");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let probe_sizes = [256usize, 16_384, 262_144];
    eprintln!("# Figure 4 reproduction — migration walk over {}", network.name());
    let results = run(network.profile(), &probe_sizes);

    println!("hop,machine,selected_protocol,served_before,elements,bandwidth_mbps");
    for (hop, r) in results.iter().enumerate() {
        for (elements, mbps) in &r.bandwidth {
            println!(
                "{},{},{},{},{},{:.4}",
                hop + 1,
                r.machine_name,
                r.selected,
                r.served_before,
                elements,
                mbps
            );
        }
    }

    eprintln!();
    eprintln!("hop  machine  selected protocol              expected");
    let expected = expected_selections();
    let mut all_match = true;
    for (i, r) in results.iter().enumerate() {
        let ok = r.selected == expected[i];
        all_match &= ok;
        eprintln!(
            "{:>3}  {:<7}  {:<30} {}{}",
            i + 1,
            r.machine_name,
            r.selected,
            expected[i],
            if ok { "  ✓" } else { "  ✗ MISMATCH" }
        );
    }
    eprintln!();
    eprintln!(
        "VERDICT: selection sequence {} the paper's Figure 4 narrative",
        if all_match { "MATCHES" } else { "DOES NOT MATCH" }
    );
    if let (Some(first), Some(last)) = (results.first(), results.last()) {
        let f = first.bandwidth.last().map(|b| b.1).unwrap_or(0.0);
        let l = last.bandwidth.last().map(|b| b.1).unwrap_or(0.0);
        eprintln!(
            "VERDICT: final shared-memory hop is {:.1}x the first remote hop \
             ({l:.1} vs {f:.1} Mbps at the largest probe)",
            l / f
        );
    }
}
