//! Contention sweep: per-client and aggregate bandwidth as the number of
//! clients sharing one LAN segment grows, with the shared-media queuing
//! model on and (ablation) off.
//!
//! The paper's testbed used shared 10 Mbps Ethernet; its single-client
//! Figure 5 curves implicitly assume the segment is otherwise idle. This
//! experiment quantifies what happens when it is not — and the ablation
//! shows the effect comes from the queuing model, not from protocol costs.
//!
//! Methodology: each client is a *flow* with its own local virtual time,
//! advanced per transfer via [`SimNet::transfer_at`]. Flows are interleaved
//! deterministically (always step the flow that is furthest behind), which
//! is an event-driven simulation — no thread races, bit-identical runs.

use ohpc_netsim::{Cluster, LanId, MachineId, SimNet, SimTime};

use crate::fig5::Network;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Whether shared-media queuing was active.
    pub queuing: bool,
    /// Sum of per-client bandwidths (Mbps).
    pub aggregate_mbps: f64,
    /// Mean per-client bandwidth (Mbps).
    pub per_client_mbps: f64,
    /// Mean fraction of per-flow time spent waiting for the wire.
    pub queue_wait_frac: f64,
}

/// Runs one sweep point: `clients` flows each performing
/// `requests_per_client` echo-shaped exchanges (request + reply transfer)
/// with one server over a shared segment.
pub fn run_point(
    network: Network,
    clients: usize,
    queuing: bool,
    requests_per_client: usize,
    payload_bytes: usize,
) -> ContentionPoint {
    let mut builder = Cluster::builder().lan(LanId(0), network.profile());
    let mut server_m = MachineId(0);
    builder = builder.machine("server", LanId(0), &mut server_m);
    let mut client_ms = Vec::new();
    for i in 0..clients {
        let mut m = MachineId(0);
        builder = builder.machine(&format!("c{i}"), LanId(0), &mut m);
        client_ms.push(m);
    }
    let net = SimNet::new(builder.build());
    if !queuing {
        net.disable_queuing();
    }

    struct Flow {
        machine: MachineId,
        local: SimTime,
        requests_left: usize,
        busy_ns: u64,
        wait_ns: u64,
    }
    let mut flows: Vec<Flow> = client_ms
        .iter()
        .map(|&machine| Flow {
            machine,
            local: SimTime::ZERO,
            requests_left: requests_per_client,
            busy_ns: 0,
            wait_ns: 0,
        })
        .collect();

    // Event-driven: always advance the flow whose local clock is furthest
    // behind — exactly the order a real shared medium would serve them.
    while let Some(flow) =
        flows.iter_mut().filter(|f| f.requests_left > 0).min_by_key(|f| f.local)
    {
        let req = net.transfer_at(flow.local, flow.machine, server_m, payload_bytes);
        let rep = net.transfer_at(req.arrived, server_m, flow.machine, payload_bytes);
        flow.busy_ns += rep.arrived.saturating_sub(flow.local).0;
        flow.wait_ns += req.queued().0 + rep.queued().0;
        flow.local = rep.arrived;
        flow.requests_left -= 1;
    }

    let mut aggregate_mbps = 0.0;
    let mut wait_frac_sum = 0.0;
    for f in &flows {
        let bits = (requests_per_client * 2 * payload_bytes) as f64 * 8.0;
        aggregate_mbps += bits / (f.busy_ns as f64 / 1e9) / 1e6;
        wait_frac_sum += f.wait_ns as f64 / f.busy_ns as f64;
    }

    ContentionPoint {
        clients,
        queuing,
        aggregate_mbps,
        per_client_mbps: aggregate_mbps / clients as f64,
        queue_wait_frac: wait_frac_sum / clients as f64,
    }
}

/// Full sweep over client counts, queuing on and off.
pub fn run_sweep(network: Network, client_counts: &[usize]) -> Vec<ContentionPoint> {
    let mut out = Vec::new();
    for &n in client_counts {
        for queuing in [true, false] {
            out.push(run_point(network, n, queuing, 16, 100_000));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_client_share_shrinks_under_queuing() {
        let solo = run_point(Network::Ethernet, 1, true, 16, 100_000);
        let four = run_point(Network::Ethernet, 4, true, 16, 100_000);
        assert!(
            four.per_client_mbps < solo.per_client_mbps / 2.0,
            "4-way share {:.2} vs solo {:.2}",
            four.per_client_mbps,
            solo.per_client_mbps
        );
        assert!(four.queue_wait_frac > 0.3, "waiting should dominate: {:.2}", four.queue_wait_frac);
        assert!(solo.queue_wait_frac < 0.05, "solo client shouldn't wait: {:.2}", solo.queue_wait_frac);
    }

    #[test]
    fn ablation_without_queuing_keeps_full_share() {
        // Idealized medium: every client sees the unloaded link, so aggregate
        // scales linearly and exceeds the physical line rate — proof that the
        // realistic result comes from the shared-media model.
        let solo = run_point(Network::Ethernet, 1, false, 16, 100_000);
        let four = run_point(Network::Ethernet, 4, false, 16, 100_000);
        assert!((four.per_client_mbps - solo.per_client_mbps).abs() / solo.per_client_mbps < 0.05);
        assert!(
            four.aggregate_mbps > 1.5 * 10.0,
            "idealized aggregate {:.2} should exceed the 10 Mbps line rate",
            four.aggregate_mbps
        );
        assert_eq!(four.queue_wait_frac, 0.0);
    }

    #[test]
    fn queued_aggregate_respects_link_capacity() {
        let p = run_point(Network::Ethernet, 8, true, 8, 100_000);
        // Per-flow accounting overlaps propagation latency across flows, so
        // the aggregate can exceed the payload line rate by a whisker — but
        // never by the multiples the no-queuing ablation shows.
        assert!(
            p.aggregate_mbps < 11.0,
            "{:.2} Mbps aggregate over a 10 Mbps segment",
            p.aggregate_mbps
        );
        assert!(p.aggregate_mbps > 5.0, "should still be well utilized: {:.2}", p.aggregate_mbps);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_point(Network::Atm, 4, true, 8, 50_000);
        let b = run_point(Network::Atm, 4, true, 8, 50_000);
        assert_eq!(a, b);
    }
}
