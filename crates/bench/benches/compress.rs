//! Codec costs: RLE vs LZSS on the XDR-int-array workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ohpc_compress::{Codec, Lzss, Rle};

fn payload(n: usize) -> Vec<u8> {
    // XDR-encoded small ints: 3 zero bytes + 1 value byte per element.
    (0..n).map(|i| if i % 4 == 3 { (i % 97) as u8 } else { 0 }).collect()
}

fn bench_compress(c: &mut Criterion) {
    for (name, codec) in [("rle", &Rle as &dyn Codec), ("lzss", &Lzss as &dyn Codec)] {
        let mut group = c.benchmark_group(format!("{name}_compress"));
        for &n in &[4096usize, 262_144] {
            let data = payload(n);
            group.throughput(Throughput::Bytes(n as u64));
            group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
                b.iter(|| std::hint::black_box(codec.compress(d)));
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("{name}_decompress"));
        for &n in &[4096usize, 262_144] {
            let packed = codec.compress(&payload(n));
            group.throughput(Throughput::Bytes(n as u64));
            group.bench_with_input(BenchmarkId::from_parameter(n), &packed, |b, p| {
                b.iter(|| std::hint::black_box(codec.decompress(p).unwrap()));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
