//! Primitive costs: SHA-256, HMAC, ChaCha20 throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ohpc_crypto::{chacha20_xor, hmac_sha256, sha256};

fn bench_crypto(c: &mut Criterion) {
    let sizes = [1024usize, 65_536, 1 << 20];

    let mut group = c.benchmark_group("sha256");
    for &n in &sizes {
        let data = vec![0xA5u8; n];
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| std::hint::black_box(sha256(d)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hmac_sha256");
    let key = b"benchmark-key";
    for &n in &sizes {
        let data = vec![0x5Au8; n];
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| std::hint::black_box(hmac_sha256(key, d)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("chacha20");
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    for &n in &sizes {
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut data = vec![0u8; n];
            b.iter(|| {
                chacha20_xor(&key, &nonce, 0, &mut data);
                std::hint::black_box(&data);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
