//! Marshaling cost: XDR encode/decode of the experiment payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ohpc_xdr::{decode_from_slice, encode_to_vec, XdrWriter};

fn bench_xdr(c: &mut Criterion) {
    let mut group = c.benchmark_group("xdr_int_array");
    for &n in &[64usize, 4096, 262_144] {
        let v: Vec<i32> = (0..n as i32).collect();
        group.throughput(Throughput::Bytes((4 * n) as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &v, |b, v| {
            b.iter(|| {
                let mut w = XdrWriter::with_capacity(4 + 4 * v.len());
                use ohpc_xdr::XdrEncode;
                v.encode(&mut w);
                std::hint::black_box(w.finish())
            });
        });
        let buf = encode_to_vec(&v);
        group.bench_with_input(BenchmarkId::new("decode", n), &buf, |b, buf| {
            b.iter(|| std::hint::black_box(decode_from_slice::<Vec<i32>>(buf).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("xdr_strings");
    let s = "weather-map-region-".repeat(50);
    group.bench_function("encode_1k_string", |b| {
        b.iter(|| std::hint::black_box(encode_to_vec(&s)));
    });
    let buf = encode_to_vec(&s);
    group.bench_function("decode_1k_string", |b| {
        b.iter(|| std::hint::black_box(decode_from_slice::<String>(&buf).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_xdr);
criterion_main!(benches);
