//! Per-capability processing cost: the microbenchmark behind the §5
//! "capability overhead is small" claim and the overhead_table binary.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ohpc_bench::overhead::standard_chains;
use ohpc_bench::setup::EXPERIMENT_KEY;
use ohpc_crypto::KeyStore;
use ohpc_orb::capability::{process_chain, unprocess_chain, CallInfo};
use ohpc_orb::{CapabilityRegistry, Direction, ObjectId, RequestId};

fn registry() -> Arc<CapabilityRegistry> {
    let reg = CapabilityRegistry::new();
    let mut keys = KeyStore::new();
    keys.add_key(EXPERIMENT_KEY, b"open-hpc++-experiment-psk");
    ohpc_caps::register_standard(&reg, keys);
    Arc::new(reg)
}

fn bench_caps(c: &mut Criterion) {
    let reg = registry();
    let call = CallInfo { object: ObjectId(1), method: 1, request_id: RequestId(1) };

    for (label, specs) in standard_chains() {
        let chain = reg.build_chain(&specs).unwrap();
        let mut group = c.benchmark_group(format!("cap_{label}"));
        for &n in &[1024usize, 65_536] {
            let body: Bytes = (0..n)
                .map(|i| if i % 4 == 3 { (i % 97) as u8 } else { 0 })
                .collect::<Vec<_>>()
                .into();
            group.throughput(Throughput::Bytes(n as u64));
            group.bench_with_input(BenchmarkId::from_parameter(n), &body, |b, body| {
                b.iter(|| {
                    let (wire, metas) =
                        process_chain(&chain, Direction::Request, &call, body.clone()).unwrap();
                    let back = unprocess_chain(&chain, Direction::Request, &call, &metas, wire)
                        .unwrap();
                    std::hint::black_box(back)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_caps);
criterion_main!(benches);
