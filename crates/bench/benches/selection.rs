//! Protocol-selection cost: the per-request price of the open ORB's
//! adaptivity, as a function of OR table size and position of the match.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ohpc_netsim::Location;
use ohpc_orb::objref::ProtoEntry;
use ohpc_orb::selection::select;
use ohpc_orb::{
    ApplicabilityRule, ObjectId, ObjectReference, OrbError, ProtoObject, ProtoPool, ProtocolId,
    ReplyMessage, RequestMessage,
};

struct RuleProto {
    id: ProtocolId,
    rule: ApplicabilityRule,
}

impl ProtoObject for RuleProto {
    fn protocol_id(&self) -> ProtocolId {
        self.id
    }
    fn applicable(
        &self,
        _p: &ProtoPool,
        c: &Location,
        s: &Location,
        _e: &ProtoEntry,
    ) -> bool {
        self.rule.allows(c, s)
    }
    fn invoke(
        &self,
        _p: &ProtoPool,
        _e: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError> {
        Ok(ReplyMessage::ok(req.request_id, bytes::Bytes::new()))
    }
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for &table_len in &[2usize, 8, 32] {
        // Table of same-machine-only entries with one Always entry at the
        // end: a remote client walks the whole table.
        let mut pool = ProtoPool::new();
        let mut protocols = Vec::new();
        for i in 0..table_len as u16 {
            let id = ProtocolId(200 + i);
            let rule = if (i as usize) < table_len - 1 {
                ApplicabilityRule::SameMachineOnly
            } else {
                ApplicabilityRule::Always
            };
            pool.push(Arc::new(RuleProto { id, rule }));
            protocols.push(ProtoEntry::endpoint(id, format!("tcp://h:{i}")));
        }
        let or = ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(0, 0),
            protocols,
        };
        let client = Location::new(9, 9);
        group.bench_with_input(
            BenchmarkId::new("worst_case_walk", table_len),
            &table_len,
            |b, _| {
                b.iter(|| std::hint::black_box(select(&or, &pool, &client).unwrap().index));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
