//! Protocol-selection cost: the per-request price of the open ORB's
//! adaptivity, as a function of OR table size and position of the match.
//!
//! Two series per table size:
//!
//! * `worst_case_walk` — the full uncached walk (every row rejected until
//!   the last), which grows linearly in table size;
//! * `cached_hit` — the per-GP selection cache's hit path (four atomic
//!   loads + memo clone), which must stay flat across table sizes. The
//!   `bench_selection_json --gate` binary enforces that flatness in CI;
//!   this bench is the statistical view of the same scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ohpc_bench::selection_cost::{SelectionScenario, TABLE_SIZES};
use ohpc_orb::selection::select;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for &table_len in TABLE_SIZES {
        let scenario = SelectionScenario::new(table_len);
        group.bench_with_input(
            BenchmarkId::new("worst_case_walk", table_len),
            &table_len,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        select(&scenario.or, &scenario.pool, &scenario.client).unwrap().index,
                    )
                });
            },
        );
        let gp = scenario.warmed_gp();
        group.bench_with_input(BenchmarkId::new("cached_hit", table_len), &table_len, |b, _| {
            b.iter(|| std::hint::black_box(gp.select_cached().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
