//! End-to-end RMI cost over the real in-process fabric (no simulation):
//! round-trip latency and the incremental cost of a glue chain.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ohpc_bench::workload::{make_array, EchoArray, EchoArrayClient, EchoArraySkeleton};
use ohpc_caps::TimeoutCap;
use ohpc_crypto::KeyStore;
use ohpc_netsim::Location;
use ohpc_orb::context::OrRow;
use ohpc_orb::{
    ApplicabilityRule, CapabilityRegistry, Context, ContextId, GlobalPointer, GlueProto,
    ProtoPool, ProtocolId, TransportProto,
};
use ohpc_transport::mem::MemFabric;

fn registry() -> Arc<CapabilityRegistry> {
    let reg = CapabilityRegistry::new();
    let mut keys = KeyStore::new();
    keys.add_key("site-key", b"open-hpc++-experiment-psk");
    ohpc_caps::register_standard(&reg, keys);
    Arc::new(reg)
}

fn bench_rmi(c: &mut Criterion) {
    let fabric = MemFabric::new();
    let reg = registry();
    let ctx = Context::new(ContextId(1), Location::new(0, 0), reg.clone());
    let object = ctx.register(Arc::new(EchoArraySkeleton(EchoArray::default())));
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);

    let plain_or = ctx.make_or(object, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
    let glue_id = ctx.add_glue(vec![TimeoutCap::spec(u64::MAX / 2)]).unwrap();
    let glue_or =
        ctx.make_or(object, &[OrRow::Glue { glue_id, inner: ProtocolId::TCP }]).unwrap();

    let pool = Arc::new(
        ProtoPool::new()
            .with(Arc::new(GlueProto::new(reg)))
            .with(Arc::new(TransportProto::new(
                ProtocolId::TCP,
                ApplicabilityRule::Always,
                Arc::new(fabric),
            ))),
    );
    let plain =
        EchoArrayClient::new(GlobalPointer::new(plain_or, pool.clone(), Location::new(1, 1)));
    let glued = EchoArrayClient::new(GlobalPointer::new(glue_or, pool, Location::new(1, 1)));

    let mut group = c.benchmark_group("rmi_roundtrip");
    group.bench_function("ping_plain", |b| b.iter(|| plain.ping().unwrap()));
    group.bench_function("ping_glue_timeout", |b| b.iter(|| glued.ping().unwrap()));
    group.finish();

    let mut group = c.benchmark_group("rmi_oneway");
    group.bench_function("oneway_ping_plain", |b| {
        b.iter(|| {
            let w = ohpc_xdr::XdrWriter::new();
            plain.gp().invoke_oneway(2, &w).unwrap()
        })
    });
    group.bench_function("oneway_ping_glue_timeout", |b| {
        b.iter(|| {
            let w = ohpc_xdr::XdrWriter::new();
            glued.gp().invoke_oneway(2, &w).unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rmi_echo");
    for &n in &[256usize, 16_384] {
        let v = make_array(n);
        group.throughput(Throughput::Bytes((8 * n) as u64));
        group.bench_with_input(BenchmarkId::new("plain", n), &v, |b, v| {
            b.iter(|| std::hint::black_box(plain.echo(v.clone()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("glue_timeout", n), &v, |b, v| {
            b.iter(|| std::hint::black_box(glued.echo(v.clone()).unwrap()));
        });
    }
    group.finish();

    ctx.shutdown();
}

criterion_group!(benches, bench_rmi);
criterion_main!(benches);
