//! Automatic run-time protocol selection.
//!
//! The paper's rule, verbatim: "When a remote request is made, the protocols
//! in the GP's OR are compared with those in the proto-pool and the first
//! match is used to satisfy the request." A match requires (a) the protocol
//! id to be present in the pool and (b) the proto-object to declare itself
//! applicable for the (client location, server location, entry) triple.

use std::sync::Arc;

use ohpc_netsim::Location;
use ohpc_resilience::{HealthKey, HealthRegistry};

use crate::error::OrbError;
use crate::objref::{ObjectReference, ProtoEntry};
use crate::proto::{ProtoObject, ProtoPool};

/// Outcome of selection: the proto-object to use and the OR entry it serves.
pub struct Selection {
    /// The chosen proto-object from the pool.
    pub proto: Arc<dyn ProtoObject>,
    /// The OR table row it will execute.
    pub entry: ProtoEntry,
    /// Index of the row in the OR table (for experiment logs).
    pub index: usize,
    /// True when no circuit breaker influenced this choice: nothing was
    /// skipped as `breaker-open` and this is not the all-denied fallback.
    ///
    /// Only steady selections are safe to memoize in the per-GP selection
    /// cache: a breaker-influenced choice can change with the mere passage
    /// of time (an open breaker's cooldown elapsing re-admits the preferred
    /// row *without* bumping [`HealthRegistry::generation`] until the next
    /// walk observes it), so the cache must keep re-walking while any
    /// breaker is steering traffic.
    pub steady: bool,
}

impl Selection {
    /// Human-readable description, e.g. `glue[timeout+security]->tcp`.
    pub fn describe(&self) -> String {
        self.proto.describe(&self.entry)
    }
}

impl std::fmt::Debug for Selection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Selection")
            .field("protocol", &self.describe())
            .field("index", &self.index)
            .finish()
    }
}

/// Selects the protocol for one request, or reports that nothing matched.
///
/// Every entry considered leaves a telemetry trace: the winner increments
/// `orb_selection_total{protocol,outcome="selected"}`, each skipped entry
/// increments `orb_selection_rejected_total{protocol,reason}` with the reason
/// the paper's rule rejected it (`not-in-pool` vs. `inapplicable`), and an
/// empty result increments `orb_selection_failed_total`.
pub fn select(
    or: &ObjectReference,
    pool: &ProtoPool,
    client: &Location,
) -> Result<Selection, OrbError> {
    select_with_health(or, pool, client, None)
}

/// The health-aware key an entry's circuit breaker lives under: the terminal
/// protocol and endpoint, so a glue entry and a plain entry over the same
/// wire share one breaker.
pub fn health_key(entry: &ProtoEntry) -> HealthKey {
    HealthKey::new(entry.terminal_protocol().to_string(), entry.terminal_endpoint())
}

/// [`select`], additionally consulting a [`HealthRegistry`]: an applicable
/// entry whose circuit breaker is open is skipped (reason `breaker-open`),
/// letting the next applicable OR-table row win — the paper's
/// failover-as-applicability-predicate, with health as one more predicate.
///
/// Two guarantees keep degraded state from becoming an outage:
///
/// - a selection that lands past a breaker-skipped entry increments
///   `resilience_failover_total{protocol}` so operators can see traffic
///   leaving the preferred row;
/// - if *every* applicable entry is breaker-denied, the first of them is
///   selected anyway (`resilience_breaker_fallback_total`) — a breaker may
///   only redirect traffic, never refuse it outright.
pub fn select_with_health(
    or: &ObjectReference,
    pool: &ProtoPool,
    client: &Location,
    health: Option<&HealthRegistry>,
) -> Result<Selection, OrbError> {
    let mut breaker_skips = 0u32;
    let mut fallback: Option<Selection> = None;
    for (index, entry) in or.protocols.iter().enumerate() {
        let proto_name = entry.id.to_string();
        let Some(proto) = pool.find(entry.id) else {
            ohpc_telemetry::inc(
                "orb_selection_rejected_total",
                &[("protocol", &proto_name), ("reason", "not-in-pool")],
            );
            ohpc_telemetry::trace_event(
                "selection_rejected",
                &[("protocol", &proto_name), ("reason", "not-in-pool")],
            );
            continue;
        };
        if !proto.applicable(pool, client, &or.location, entry) {
            ohpc_telemetry::inc(
                "orb_selection_rejected_total",
                &[("protocol", &proto_name), ("reason", "inapplicable")],
            );
            ohpc_telemetry::trace_event(
                "selection_rejected",
                &[("protocol", &proto_name), ("reason", "inapplicable")],
            );
            continue;
        }
        if let Some(h) = health {
            if !h.allow(&health_key(entry)) {
                ohpc_telemetry::inc(
                    "orb_selection_rejected_total",
                    &[("protocol", &proto_name), ("reason", "breaker-open")],
                );
                ohpc_telemetry::trace_event(
                    "selection_rejected",
                    &[("protocol", &proto_name), ("reason", "breaker-open")],
                );
                breaker_skips += 1;
                if fallback.is_none() {
                    fallback =
                        Some(Selection { proto, entry: entry.clone(), index, steady: false });
                }
                continue;
            }
        }
        ohpc_telemetry::inc(
            "orb_selection_total",
            &[("protocol", &proto_name), ("outcome", "selected")],
        );
        if breaker_skips > 0 {
            ohpc_telemetry::inc("resilience_failover_total", &[("protocol", &proto_name)]);
        }
        ohpc_telemetry::trace_event(
            "selection",
            &[
                ("protocol", &proto_name),
                ("index", &index.to_string()),
                ("outcome", if breaker_skips > 0 { "failover" } else { "selected" }),
            ],
        );
        return Ok(Selection { proto, entry: entry.clone(), index, steady: breaker_skips == 0 });
    }
    if let Some(sel) = fallback {
        // Every applicable row is breaker-denied. Refusing to select would
        // turn a degraded table into a total outage, so take the preferred
        // denied row and let it probe the endpoint.
        let proto_name = sel.entry.id.to_string();
        ohpc_telemetry::inc(
            "orb_selection_total",
            &[("protocol", &proto_name), ("outcome", "breaker-fallback")],
        );
        ohpc_telemetry::inc(
            "resilience_breaker_fallback_total",
            &[("protocol", &proto_name)],
        );
        ohpc_telemetry::trace_event(
            "selection",
            &[
                ("protocol", &proto_name),
                ("index", &sel.index.to_string()),
                ("outcome", "breaker-fallback"),
            ],
        );
        return Ok(sel);
    }
    ohpc_telemetry::inc("orb_selection_failed_total", &[]);
    ohpc_telemetry::trace_event("selection_failed", &[]);
    Err(OrbError::NoApplicableProtocol { offered: or.offered() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, ProtocolId};
    use crate::message::{ReplyMessage, RequestMessage};
    use crate::proto::ApplicabilityRule;
    use bytes::Bytes;

    struct RuleProto {
        id: ProtocolId,
        rule: ApplicabilityRule,
    }

    impl ProtoObject for RuleProto {
        fn protocol_id(&self) -> ProtocolId {
            self.id
        }
        fn applicable(
            &self,
            _pool: &ProtoPool,
            c: &Location,
            s: &Location,
            _e: &ProtoEntry,
        ) -> bool {
            self.rule.allows(c, s)
        }
        fn invoke(
            &self,
            _pool: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            Ok(ReplyMessage::ok(req.request_id, Bytes::new()))
        }
    }

    fn proto(id: ProtocolId, rule: ApplicabilityRule) -> Arc<dyn ProtoObject> {
        Arc::new(RuleProto { id, rule })
    }

    fn or_with(protocols: Vec<ProtoEntry>, server: Location) -> ObjectReference {
        ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: server,
            protocols,
        }
    }

    #[test]
    fn first_applicable_entry_wins() {
        // OR prefers SHM, then TCP. Remote client: SHM inapplicable → TCP.
        let or = or_with(
            vec![
                ProtoEntry::endpoint(ProtocolId::SHM, "mem://1"),
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
            ],
            Location::new(0, 0),
        );
        let pool = ProtoPool::new()
            .with(proto(ProtocolId::SHM, ApplicabilityRule::SameMachineOnly))
            .with(proto(ProtocolId::TCP, ApplicabilityRule::Always));

        let remote_client = Location::new(5, 2);
        let sel = select(&or, &pool, &remote_client).unwrap();
        assert_eq!(sel.proto.protocol_id(), ProtocolId::TCP);
        assert_eq!(sel.index, 1);

        // Local client: SHM applicable → preferred entry wins.
        let local_client = Location::new(0, 0);
        let sel = select(&or, &pool, &local_client).unwrap();
        assert_eq!(sel.proto.protocol_id(), ProtocolId::SHM);
        assert_eq!(sel.index, 0);
    }

    #[test]
    fn missing_pool_entry_is_skipped() {
        let or = or_with(
            vec![
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://h:2"),
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
            ],
            Location::new(0, 0),
        );
        // Pool lacks NEXUS_TCP entirely — local policy disabled it.
        let pool = ProtoPool::new().with(proto(ProtocolId::TCP, ApplicabilityRule::Always));
        let sel = select(&or, &pool, &Location::new(1, 0)).unwrap();
        assert_eq!(sel.proto.protocol_id(), ProtocolId::TCP);
    }

    #[test]
    fn nothing_applicable_reports_offered_list() {
        let or = or_with(
            vec![ProtoEntry::endpoint(ProtocolId::SHM, "mem://1")],
            Location::new(0, 0),
        );
        let pool = ProtoPool::new()
            .with(proto(ProtocolId::SHM, ApplicabilityRule::SameMachineOnly));
        let err = select(&or, &pool, &Location::new(9, 9)).unwrap_err();
        assert_eq!(err, OrbError::NoApplicableProtocol { offered: vec![ProtocolId::SHM] });
    }

    #[test]
    fn empty_or_table_never_selects() {
        let or = or_with(vec![], Location::new(0, 0));
        let pool = ProtoPool::new().with(proto(ProtocolId::TCP, ApplicabilityRule::Always));
        assert!(select(&or, &pool, &Location::new(0, 0)).is_err());
    }

    #[test]
    fn open_breaker_fails_over_to_next_entry() {
        use ohpc_resilience::HealthRegistry;
        use ohpc_telemetry::ManualClock;
        let or = or_with(
            vec![
                ProtoEntry::endpoint(ProtocolId::SHM, "mem://1"),
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
            ],
            Location::new(0, 0),
        );
        let pool = ProtoPool::new()
            .with(proto(ProtocolId::SHM, ApplicabilityRule::Always))
            .with(proto(ProtocolId::TCP, ApplicabilityRule::Always));
        let health = HealthRegistry::with_clock(Arc::new(ManualClock::new()));
        let k = health_key(&or.protocols[0]);
        for _ in 0..3 {
            health.record_failure(&k);
        }
        let sel =
            select_with_health(&or, &pool, &Location::new(0, 0), Some(&health)).unwrap();
        assert_eq!(sel.index, 1, "breaker-open entry skipped");
        assert_eq!(sel.proto.protocol_id(), ProtocolId::TCP);

        // Without the registry the preferred entry still wins.
        let sel = select_with_health(&or, &pool, &Location::new(0, 0), None).unwrap();
        assert_eq!(sel.index, 0);
    }

    #[test]
    fn all_breakers_open_still_selects_preferred_entry() {
        use ohpc_resilience::HealthRegistry;
        use ohpc_telemetry::ManualClock;
        let or = or_with(
            vec![
                ProtoEntry::endpoint(ProtocolId::SHM, "mem://1"),
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
            ],
            Location::new(0, 0),
        );
        let pool = ProtoPool::new()
            .with(proto(ProtocolId::SHM, ApplicabilityRule::Always))
            .with(proto(ProtocolId::TCP, ApplicabilityRule::Always));
        let health = HealthRegistry::with_clock(Arc::new(ManualClock::new()));
        for entry in &or.protocols {
            let k = health_key(entry);
            for _ in 0..3 {
                health.record_failure(&k);
            }
        }
        // A breaker may redirect traffic but never refuse it outright: with
        // every row denied, the preferred row is selected as the probe.
        let sel =
            select_with_health(&or, &pool, &Location::new(0, 0), Some(&health)).unwrap();
        assert_eq!(sel.index, 0);
    }

    #[test]
    fn glue_and_plain_entry_share_a_health_key() {
        let inner = ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1");
        let glued = ProtoEntry::glue(7, vec![], inner.clone());
        assert_eq!(health_key(&inner), health_key(&glued));
    }

    #[test]
    fn or_preference_order_dominates_pool_order() {
        // Pool lists TCP first, but the OR prefers NEXUS_TCP: OR wins.
        let or = or_with(
            vec![
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://h:2"),
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
            ],
            Location::new(0, 0),
        );
        let pool = ProtoPool::new()
            .with(proto(ProtocolId::TCP, ApplicabilityRule::Always))
            .with(proto(ProtocolId::NEXUS_TCP, ApplicabilityRule::Always));
        let sel = select(&or, &pool, &Location::new(1, 1)).unwrap();
        assert_eq!(sel.proto.protocol_id(), ProtocolId::NEXUS_TCP);
    }
}
