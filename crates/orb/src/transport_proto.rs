//! Transport-backed protocol objects.
//!
//! [`TransportProto`] turns any [`ohpc_transport::Dialer`] into a
//! proto-object: it owns a connection cache keyed by endpoint and performs
//! synchronous request/reply over framed connections. The TCP, shared-memory
//! and simulated-network protocol objects are all instances of it with
//! different dialers and applicability rules — which is precisely the
//! "proto-class" reuse the paper describes.
//!
//! [`NexusProto`] is the baseline: it tunnels ORB frames through the
//! Nexus RSR layer instead of raw framed connections.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use ohpc_nexus::{HandlerId, NexusError, Startpoint};
use ohpc_netsim::Location;
use ohpc_transport::{Connection, Dialer, Endpoint, TransportError};
use ohpc_xdr::XdrWriter;

use crate::error::OrbError;
use crate::ids::ProtocolId;
use crate::message::{ReplyMessage, RequestMessage};
use crate::objref::{ProtoData, ProtoEntry};
use crate::proto::{ApplicabilityRule, ProtoObject, ProtoPool};

/// Handler slot the ORB occupies inside a Nexus service.
pub const NEXUS_ORB_HANDLER: HandlerId = HandlerId(0xC0DE);

fn endpoint_of(entry: &ProtoEntry) -> Result<Endpoint, OrbError> {
    match &entry.data {
        ProtoData::Endpoint(s) => Endpoint::parse(s)
            .ok_or_else(|| OrbError::Protocol(format!("unparseable endpoint '{s}'"))),
        ProtoData::Glue { .. } => Err(OrbError::Protocol(
            "glue entry reached a transport protocol object".into(),
        )),
    }
}

/// A pooled connection, shared between invocations.
type SharedConn = Arc<Mutex<Box<dyn Connection>>>;

/// A proto-object speaking raw ORB frames over a transport.
pub struct TransportProto {
    id: ProtocolId,
    rule: ApplicabilityRule,
    dialer: Arc<dyn Dialer>,
    conns: Mutex<HashMap<Endpoint, SharedConn>>,
}

impl TransportProto {
    /// Builds a proto-object for `id` with the given applicability.
    pub fn new(id: ProtocolId, rule: ApplicabilityRule, dialer: Arc<dyn Dialer>) -> Self {
        Self { id, rule, dialer, conns: Mutex::new(HashMap::new()) }
    }

    /// Returns (connection, was_cached): a cached connection may be stale
    /// (server restarted), so callers retry once with a fresh dial when a
    /// cached connection fails.
    fn connection(&self, ep: &Endpoint) -> Result<(SharedConn, bool), TransportError> {
        if let Some(c) = self.conns.lock().get(ep) {
            return Ok((c.clone(), true));
        }
        let conn = self.dialer.dial(ep)?;
        let conn = Arc::new(Mutex::new(conn));
        self.conns.lock().insert(ep.clone(), conn.clone());
        Ok((conn, false))
    }

    /// One request/reply over a pooled connection, distinguishing failure
    /// phases: a dial or send failure means the frame never left this
    /// process ([`OrbError::Transport`], always safe to retry), while a recv
    /// failure happens after the frame was handed to the fabric — the server
    /// may have executed the request — so it surfaces as
    /// [`OrbError::AmbiguousTransport`] and is never transparently re-sent
    /// here. Idempotency-aware retry lives in the GP, which knows the
    /// request's semantics; this layer only retries the provably-unsent
    /// case of a stale cached connection.
    fn exchange(
        &self,
        ep: &Endpoint,
        frame: &[u8],
    ) -> Result<bytes::Bytes, OrbError> {
        for attempt in 0..2 {
            let (conn, was_cached) = self.connection(ep)?;
            let mut guard = conn.lock();
            match guard.send(frame) {
                Err(e) => {
                    // The frame was not delivered. A dead cached connection
                    // must not poison future calls; retry exactly once with
                    // a fresh dial.
                    drop(guard);
                    self.forget(ep);
                    if !(was_cached && attempt == 0) {
                        return Err(e.into());
                    }
                    ohpc_telemetry::inc(
                        "orb_transport_retries_total",
                        &[("protocol", &self.id.to_string())],
                    );
                }
                Ok(()) => {
                    let received = guard.recv();
                    drop(guard);
                    match received {
                        Ok(f) => return Ok(f),
                        Err(e) => {
                            self.forget(ep);
                            return Err(OrbError::AmbiguousTransport(e));
                        }
                    }
                }
            }
        }
        // Both iterations return above; keep a typed error rather than a
        // panic in case the retry policy ever changes shape.
        Err(OrbError::Protocol("exchange retry loop exhausted".into()))
    }

    fn forget(&self, ep: &Endpoint) {
        self.conns.lock().remove(ep);
    }

    /// Number of cached connections (for tests).
    pub fn cached_connections(&self) -> usize {
        self.conns.lock().len()
    }
}

impl ProtoObject for TransportProto {
    fn protocol_id(&self) -> ProtocolId {
        self.id
    }

    fn applicable(
        &self,
        _pool: &ProtoPool,
        client: &Location,
        server: &Location,
        _entry: &ProtoEntry,
    ) -> bool {
        self.rule.allows(client, server)
    }

    fn invoke(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError> {
        let ep = endpoint_of(entry)?;
        let frame = req.to_frame();
        let reply_frame = self.exchange(&ep, &frame)?;
        let reply = ReplyMessage::from_frame(&reply_frame)?;
        if reply.request_id != req.request_id {
            return Err(OrbError::Protocol(format!(
                "reply id {} does not match request id {}",
                reply.request_id, req.request_id
            )));
        }
        Ok(reply)
    }

    fn invoke_oneway(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<(), OrbError> {
        debug_assert!(req.oneway, "oneway invocation requires the oneway wire flag");
        let ep = endpoint_of(entry)?;
        let frame = req.to_frame();
        for attempt in 0..2 {
            let (conn, was_cached) = self.connection(&ep)?;
            let sent = conn.lock().send(&frame);
            match sent {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.forget(&ep);
                    if !(was_cached && attempt == 0) {
                        return Err(e.into());
                    }
                    ohpc_telemetry::inc(
                        "orb_transport_retries_total",
                        &[("protocol", &self.id.to_string())],
                    );
                }
            }
        }
        // Both iterations return above; keep a typed error rather than a
        // panic in case the retry policy ever changes shape.
        Err(OrbError::Protocol("oneway retry loop exhausted".into()))
    }
}

/// The Nexus-based baseline protocol object: ORB frames ride inside Nexus
/// remote service requests (one handler slot per context).
pub struct NexusProto {
    id: ProtocolId,
    rule: ApplicabilityRule,
    dialer: Arc<dyn Dialer>,
    startpoints: Mutex<HashMap<Endpoint, Arc<Startpoint>>>,
}

impl NexusProto {
    /// Builds the baseline proto-object over the given transport dialer.
    pub fn new(id: ProtocolId, rule: ApplicabilityRule, dialer: Arc<dyn Dialer>) -> Self {
        Self { id, rule, dialer, startpoints: Mutex::new(HashMap::new()) }
    }

    fn startpoint(&self, ep: &Endpoint) -> Result<Arc<Startpoint>, OrbError> {
        if let Some(sp) = self.startpoints.lock().get(ep) {
            return Ok(sp.clone());
        }
        let sp = Arc::new(
            Startpoint::connect(self.dialer.as_ref(), ep).map_err(nexus_to_orb)?,
        );
        self.startpoints.lock().insert(ep.clone(), sp.clone());
        Ok(sp)
    }
}

fn nexus_to_orb(e: NexusError) -> OrbError {
    match e {
        NexusError::Transport(t) => OrbError::Transport(t),
        NexusError::NoSuchHandler(h) => {
            OrbError::Protocol(format!("nexus service lacks ORB handler {h}"))
        }
        NexusError::Handler(m) => OrbError::Protocol(format!("nexus handler: {m}")),
        NexusError::Protocol(m) => OrbError::Protocol(m),
    }
}

impl ProtoObject for NexusProto {
    fn protocol_id(&self) -> ProtocolId {
        self.id
    }

    fn applicable(
        &self,
        _pool: &ProtoPool,
        client: &Location,
        server: &Location,
        _entry: &ProtoEntry,
    ) -> bool {
        self.rule.allows(client, server)
    }

    fn invoke(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError> {
        let ep = endpoint_of(entry)?;
        let sp = self.startpoint(&ep)?;
        let frame = req.to_frame();
        let mut args = XdrWriter::with_capacity(frame.len() + 8);
        args.put_fixed_opaque(&frame);
        let reply_bytes = match sp.rsr_reply(NEXUS_ORB_HANDLER, &args) {
            Ok(b) => b,
            Err(e) => {
                self.startpoints.lock().remove(&ep);
                // The RSR layer merges send and receive into one call, so a
                // transport failure here cannot be proven to predate
                // delivery: classify it as ambiguous.
                return Err(match nexus_to_orb(e) {
                    OrbError::Transport(t) => OrbError::AmbiguousTransport(t),
                    other => other,
                });
            }
        };
        let reply = ReplyMessage::from_frame(&reply_bytes)?;
        if reply.request_id != req.request_id {
            return Err(OrbError::Protocol("nexus reply id mismatch".into()));
        }
        Ok(reply)
    }

    fn invoke_oneway(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<(), OrbError> {
        debug_assert!(req.oneway, "oneway invocation requires the oneway wire flag");
        let ep = endpoint_of(entry)?;
        let sp = self.startpoint(&ep)?;
        let frame = req.to_frame();
        let mut args = XdrWriter::with_capacity(frame.len() + 8);
        args.put_fixed_opaque(&frame);
        // A genuine Nexus one-way remote service request.
        if let Err(e) = sp.rsr(NEXUS_ORB_HANDLER, &args) {
            self.startpoints.lock().remove(&ep);
            return Err(nexus_to_orb(e));
        }
        Ok(())
    }

    fn describe(&self, _entry: &ProtoEntry) -> String {
        format!("nexus({})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, RequestId};
    use bytes::Bytes;
    use ohpc_transport::mem::MemFabric;
    use ohpc_transport::Listener as _;

    #[test]
    fn endpoint_of_rejects_glue_and_garbage() {
        let glue = ProtoEntry::glue(1, vec![], ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"));
        assert!(endpoint_of(&glue).is_err());
        let bad = ProtoEntry::endpoint(ProtocolId::TCP, "not-an-endpoint");
        assert!(endpoint_of(&bad).is_err());
    }

    #[test]
    fn invoke_roundtrip_and_connection_reuse() {
        let fabric = MemFabric::new();
        let mut listener = fabric.listen_on(5);

        // Echo server: replies Ok with the request body reversed.
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            for _ in 0..2 {
                let frame = conn.recv().unwrap();
                let req = RequestMessage::from_frame(&frame).unwrap();
                let mut body = req.body.to_vec();
                body.reverse();
                let reply = ReplyMessage::ok(req.request_id, Bytes::from(body));
                conn.send(&reply.to_frame()).unwrap();
            }
        });

        let proto = TransportProto::new(
            ProtocolId::SHM,
            ApplicabilityRule::Always,
            Arc::new(fabric),
        );
        let entry = ProtoEntry::endpoint(ProtocolId::SHM, "mem://5");
        let pool = ProtoPool::new();
        for i in 0..2u64 {
            let req = RequestMessage {
                request_id: RequestId(i),
                object: ObjectId(1),
                method: 0,
                oneway: false,
                glue: None,
                body: Bytes::from_static(b"abc"),
            };
            let reply = proto.invoke(&pool, &entry, &req).unwrap();
            assert_eq!(&reply.body[..], b"cba");
        }
        assert_eq!(proto.cached_connections(), 1, "one endpoint, one cached connection");
        server.join().unwrap();
    }

    #[test]
    fn dead_connection_is_evicted() {
        let fabric = MemFabric::new();
        let listener = fabric.listen_on(6);
        let proto =
            TransportProto::new(ProtocolId::SHM, ApplicabilityRule::Always, Arc::new(fabric));
        let entry = ProtoEntry::endpoint(ProtocolId::SHM, "mem://6");
        let pool = ProtoPool::new();
        let req = RequestMessage {
            request_id: RequestId(0),
            object: ObjectId(1),
            method: 0,
            oneway: false,
            glue: None,
            body: Bytes::new(),
        };
        // Server accepts, consumes the request, then drops without replying —
        // the client's send succeeds and its recv fails.
        let h = std::thread::spawn({
            let mut listener = listener;
            move || {
                let mut conn = listener.accept().unwrap();
                let _ = conn.recv();
                drop(conn);
            }
        });
        let err = proto.invoke(&pool, &entry, &req).unwrap_err();
        // The frame was sent before the peer vanished, so the failure is
        // ambiguous — the server may have processed it.
        assert!(matches!(err, OrbError::AmbiguousTransport(_)), "{err}");
        assert_eq!(proto.cached_connections(), 0, "dead connection evicted");
        h.join().unwrap();
    }
}
