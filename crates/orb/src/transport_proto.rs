//! Transport-backed protocol objects.
//!
//! [`TransportProto`] turns any [`ohpc_transport::Dialer`] into a
//! proto-object: it owns a channel cache keyed by endpoint and performs
//! synchronous request/reply over framed connections. The TCP, shared-memory
//! and simulated-network protocol objects are all instances of it with
//! different dialers and applicability rules — which is precisely the
//! "proto-class" reuse the paper describes.
//!
//! Per-endpoint pooling comes in two shapes (see [`PoolMode`]):
//!
//! - **Multiplexed** (the default, when the transport's connections can
//!   [split](ohpc_transport::Connection::try_split)): one connection per
//!   endpoint, a writer lock held only for the framed send, and a dedicated
//!   reader thread demultiplexing replies to waiters by `request_id`. N
//!   concurrent invocations have N requests in flight on one wire.
//! - **Striped**: K independent connections whose locks are held across the
//!   whole exchange, for transports whose framing cannot interleave
//!   concurrent requests (the simulated network, fault-injection wrappers).
//!
//! Two pooling rules apply everywhere in this module:
//!
//! - **Eviction is by identity, never by key.** A caller that observed a
//!   channel fail evicts exactly that channel (`Arc` identity); a racing
//!   caller may already have replaced it with a fresh healthy one which must
//!   not become collateral damage.
//! - **Publication re-checks under the lock.** Dialing happens outside the
//!   cache lock, so two callers can race to build a channel for the same
//!   endpoint; the loser tears its duplicate down and shares the winner's.
//!
//! [`NexusProto`] is the baseline: it tunnels ORB frames through the
//! Nexus RSR layer instead of raw framed connections.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use ohpc_nexus::{HandlerId, NexusError, Startpoint};
use ohpc_netsim::Location;
use ohpc_resilience::{HealthKey, HealthRegistry};
use ohpc_transport::mux::{DeathHook, MuxChannel, MuxError};
use ohpc_transport::{Connection, Dialer, Endpoint, RecvHalf, SendHalf, TransportError};
use ohpc_xdr::{XdrReader, XdrWriter};

use crate::error::OrbError;
use crate::ids::ProtocolId;
use crate::message::{ReplyMessage, RequestMessage};
use crate::objref::{ProtoData, ProtoEntry};
use crate::proto::{ApplicabilityRule, ProtoObject, ProtoPool};

/// Handler slot the ORB occupies inside a Nexus service.
pub const NEXUS_ORB_HANDLER: HandlerId = HandlerId(0xC0DE);

/// Stripe count used when [`PoolMode::Auto`] falls back on a transport whose
/// connections cannot split.
pub const DEFAULT_STRIPES: usize = 4;

fn endpoint_of(entry: &ProtoEntry) -> Result<Endpoint, OrbError> {
    match &entry.data {
        ProtoData::Endpoint(s) => Endpoint::parse(s)
            .ok_or_else(|| OrbError::Protocol(format!("unparseable endpoint '{s}'"))),
        ProtoData::Glue { .. } => Err(OrbError::Protocol(
            "glue entry reached a transport protocol object".into(),
        )),
    }
}

/// Extracts the request id a reply frame is correlated by. Every
/// [`ReplyMessage`] frame starts with its XDR-encoded `request_id`, so the
/// demux reader routes frames without decoding the full message.
fn reply_request_id(frame: &Bytes) -> Option<u64> {
    XdrReader::new(frame).get_u64().ok()
}

/// How a [`TransportProto`] pools per-endpoint connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Multiplex requests over one split connection when the transport
    /// supports it; fall back to [`DEFAULT_STRIPES`] stripes otherwise.
    Auto,
    /// Always use a striped pool of the given width (clamped to ≥ 1). Width
    /// 1 reproduces the historical one-lock-per-endpoint serialized wire,
    /// which the contention benchmark uses as its baseline.
    Striped(usize),
}

/// One slot of a striped pool: a lazily dialed connection whose lock is held
/// across a full send+recv exchange (non-interleavable framing).
struct Stripe {
    slot: Mutex<Option<Box<dyn Connection>>>,
}

/// A fixed-width pool of independent connections to one endpoint.
struct StripeSet {
    stripes: Vec<Stripe>,
    cursor: AtomicUsize,
}

impl StripeSet {
    fn new(width: usize) -> Self {
        let width = width.max(1);
        Self {
            stripes: (0..width).map(|_| Stripe { slot: Mutex::new(None) }).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Seeds the first stripe with an already-dialed connection so the dial
    /// performed during channel construction is not wasted.
    fn adopt(&self, conn: Box<dyn Connection>) {
        if let Some(stripe) = self.stripes.first() {
            *stripe.slot.lock() = Some(conn);
        }
    }

    /// Round-robin stripe choice. `None` only if the set is empty, which the
    /// width clamp prevents; callers still handle it rather than index.
    fn pick(&self) -> Option<&Stripe> {
        if self.stripes.is_empty() {
            return None;
        }
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.stripes.len();
        self.stripes.get(i)
    }
}

/// A pooled per-endpoint channel.
#[derive(Clone)]
enum Channel {
    /// Split connection with a demux reader: N requests in flight at once.
    Mux(Arc<MuxChannel>),
    /// Independent lock-across-exchange connections.
    Striped(Arc<StripeSet>),
}

impl Channel {
    /// `Arc` identity, the unit eviction operates on.
    fn same_identity(&self, other: &Channel) -> bool {
        match (self, other) {
            (Channel::Mux(a), Channel::Mux(b)) => Arc::ptr_eq(a, b),
            (Channel::Striped(a), Channel::Striped(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// A proto-object speaking raw ORB frames over a transport.
pub struct TransportProto {
    id: ProtocolId,
    rule: ApplicabilityRule,
    dialer: Arc<dyn Dialer>,
    mode: PoolMode,
    channels: Mutex<HashMap<Endpoint, Channel>>,
    health_sink: Mutex<Option<Arc<HealthRegistry>>>,
}

impl TransportProto {
    /// Builds a proto-object for `id` with the given applicability, pooling
    /// in [`PoolMode::Auto`].
    pub fn new(id: ProtocolId, rule: ApplicabilityRule, dialer: Arc<dyn Dialer>) -> Self {
        Self {
            id,
            rule,
            dialer,
            mode: PoolMode::Auto,
            channels: Mutex::new(HashMap::new()),
            health_sink: Mutex::new(None),
        }
    }

    /// Builder-style pool-mode override.
    pub fn with_pool_mode(mut self, mode: PoolMode) -> Self {
        self.mode = mode;
        self
    }

    /// Connects reader-thread deaths to a health registry: a mux whose demux
    /// reader dies records a failure under the same
    /// `(protocol, endpoint)` key selection consults, so a dead mux trips
    /// the endpoint's breaker exactly like a failed exchange does.
    pub fn set_health_registry(&self, health: Arc<HealthRegistry>) {
        *self.health_sink.lock() = Some(health);
    }

    /// Number of cached per-endpoint channels (for tests).
    pub fn cached_connections(&self) -> usize {
        self.channels.lock().len()
    }

    /// Requests currently awaiting replies on `ep`'s multiplexed channel
    /// (0 for striped or unpooled endpoints). For tests and benchmarks.
    pub fn mux_in_flight(&self, ep: &Endpoint) -> usize {
        let chan = self.cached_channel_if_any(ep);
        match chan {
            Some(Channel::Mux(m)) => m.in_flight(),
            _ => 0,
        }
    }

    fn cached_channel_if_any(&self, ep: &Endpoint) -> Option<Channel> {
        self.channels.lock().get(ep).cloned()
    }

    fn health_registry(&self) -> Option<Arc<HealthRegistry>> {
        self.health_sink.lock().clone()
    }

    /// Returns the pooled channel for `ep` and whether it was already
    /// cached. Dead mux channels are evicted lazily here.
    fn channel(&self, ep: &Endpoint) -> Result<(Channel, bool), OrbError> {
        if let Some(chan) = self.cached_channel(ep) {
            return Ok((chan, true));
        }
        let built = self.build_channel(ep).map_err(OrbError::Transport)?;
        Ok(self.install(ep, built))
    }

    /// Single-lock lookup: get + liveness check + eviction of a dead mux
    /// under one guard, so a caller cannot hand out a channel another caller
    /// concurrently declared dead.
    fn cached_channel(&self, ep: &Endpoint) -> Option<Channel> {
        let mut map = self.channels.lock();
        if matches!(map.get(ep), Some(Channel::Mux(m)) if m.is_dead()) {
            map.remove(ep);
            return None;
        }
        map.get(ep).cloned()
    }

    /// Dials and wraps a fresh channel. In [`PoolMode::Auto`] a transport
    /// that can split its connections gets a mux; everything else stripes.
    fn build_channel(&self, ep: &Endpoint) -> Result<Channel, TransportError> {
        let mut conn = self.dialer.dial(ep)?;
        let width = match self.mode {
            PoolMode::Auto => match conn.try_split() {
                Some((tx, rx)) => {
                    // The halves own socket duplicates / channel clones; the
                    // original connection object is no longer needed.
                    drop(conn);
                    return Ok(Channel::Mux(self.spawn_mux(ep, tx, rx)));
                }
                None => DEFAULT_STRIPES,
            },
            PoolMode::Striped(k) => k,
        };
        let set = StripeSet::new(width);
        set.adopt(conn);
        Ok(Channel::Striped(Arc::new(set)))
    }

    /// Spawns the demux channel for `ep`, wiring reader-thread death into
    /// telemetry and (if configured) the health registry.
    fn spawn_mux(
        &self,
        ep: &Endpoint,
        tx: Box<dyn SendHalf>,
        rx: Box<dyn RecvHalf>,
    ) -> Arc<MuxChannel> {
        let health = self.health_registry();
        let key = HealthKey::new(self.id.to_string(), ep.to_string());
        let proto = self.id.to_string();
        let hook: DeathHook = Box::new(move |_err| {
            ohpc_telemetry::inc("orb_mux_deaths_total", &[("protocol", &proto)]);
            if let Some(h) = &health {
                h.record_failure(&key);
            }
        });
        MuxChannel::spawn(tx, rx, Box::new(reply_request_id), Some(hook))
    }

    /// Publishes a freshly built channel — unless another caller won the
    /// dial race while we were connecting, in which case the earlier channel
    /// wins, our duplicate is torn down, and the avoided double-dial is
    /// counted. Returns the channel to use and whether it was cached.
    fn install(&self, ep: &Endpoint, built: Channel) -> (Channel, bool) {
        match self.install_or_existing(ep, &built) {
            None => (built, false),
            Some(winner) => {
                ohpc_telemetry::inc(
                    "orb_double_dial_avoided_total",
                    &[("protocol", &self.id.to_string())],
                );
                if let Channel::Mux(ours) = built {
                    ours.shutdown();
                }
                (winner, true)
            }
        }
    }

    /// The map half of [`install`](Self::install): re-checks under the lock
    /// and inserts only when no live channel is present. Returns the
    /// existing live channel when the race was lost.
    fn install_or_existing(&self, ep: &Endpoint, built: &Channel) -> Option<Channel> {
        let mut map = self.channels.lock();
        let live = match map.get(ep) {
            Some(Channel::Mux(m)) if m.is_dead() => None,
            other => other.cloned(),
        };
        if live.is_none() {
            map.insert(ep.clone(), built.clone());
        }
        live
    }

    /// Evicts the channel for `ep` **only if** it is the very channel the
    /// caller observed failing (`Arc` identity, not key): a racing caller
    /// may already have replaced it with a fresh healthy channel that must
    /// not be torn down by a stale failure report.
    fn evict(&self, ep: &Endpoint, stale: &Channel) {
        let mut map = self.channels.lock();
        let is_current = match map.get(ep) {
            Some(cur) => cur.same_identity(stale),
            None => false,
        };
        if is_current {
            map.remove(ep);
        }
    }

    /// One request/reply over the pooled channel, distinguishing failure
    /// phases: a dial or send failure means the frame never left this
    /// process ([`OrbError::Transport`], always safe to retry), while any
    /// failure after the frame was handed to the fabric — the server may
    /// have executed the request — surfaces as
    /// [`OrbError::AmbiguousTransport`] and is never transparently re-sent
    /// here. Idempotency-aware retry lives in the GP, which knows the
    /// request's semantics; this layer only retries the provably-unsent
    /// case of a stale cached channel.
    fn exchange(
        &self,
        ep: &Endpoint,
        request_id: u64,
        frame: &[u8],
        remaining_ns: Option<u64>,
    ) -> Result<Bytes, OrbError> {
        for attempt in 0..2 {
            let (chan, was_cached) = self.channel(ep)?;
            match &chan {
                Channel::Striped(set) => {
                    return self.exchange_striped(ep, set, frame, remaining_ns);
                }
                Channel::Mux(mux) => {
                    match self.exchange_mux(ep, &chan, mux, request_id, frame, remaining_ns) {
                        // Stale cached mux (e.g. the server restarted): the
                        // frame provably never left, retry once fresh.
                        Err(OrbError::Transport(_)) if was_cached && attempt == 0 => {
                            ohpc_telemetry::inc(
                                "orb_transport_retries_total",
                                &[("protocol", &self.id.to_string())],
                            );
                        }
                        outcome => return outcome,
                    }
                }
            }
        }
        // Both iterations return above; keep a typed error rather than a
        // panic in case the retry policy ever changes shape.
        Err(OrbError::Protocol("exchange retry loop exhausted".into()))
    }

    /// Multiplexed exchange: the deadline rides into the demux wait, and a
    /// timeout surfaces as [`OrbError::AmbiguousTransport`] (the reply may
    /// still be in flight). Only a *dead* channel is evicted — by identity;
    /// a live channel that merely timed out keeps serving its other waiters.
    fn exchange_mux(
        &self,
        ep: &Endpoint,
        chan: &Channel,
        mux: &Arc<MuxChannel>,
        request_id: u64,
        frame: &[u8],
        remaining_ns: Option<u64>,
    ) -> Result<Bytes, OrbError> {
        let timeout = remaining_ns.map(Duration::from_nanos);
        match mux.call(request_id, frame, timeout) {
            Ok(reply) => Ok(reply),
            Err(err) => {
                if mux.is_dead() {
                    self.evict(ep, chan);
                }
                match err {
                    MuxError::Unsent(e) => Err(OrbError::Transport(e)),
                    MuxError::Lost(e) => Err(OrbError::AmbiguousTransport(e)),
                }
            }
        }
    }

    /// Fallback exchange: one stripe's lock is held across send+recv because
    /// the framing cannot interleave. The deadline arms the connection's
    /// receive timeout (where supported). Failed or timed-out connections
    /// are dropped in place — a timeout may leave a partial frame on the
    /// wire, which would desynchronize the next exchange.
    fn exchange_striped(
        &self,
        ep: &Endpoint,
        set: &Arc<StripeSet>,
        frame: &[u8],
        remaining_ns: Option<u64>,
    ) -> Result<Bytes, OrbError> {
        let Some(stripe) = set.pick() else {
            return Err(OrbError::Protocol("striped pool has no stripes".into()));
        };
        // ohpc-analyze: allow(guard-across-blocking) — a stripe is one
        // connection whose request/reply pairs must not interleave; holding
        // the slot mutex across the exchange is the striping design, and
        // contention is bounded by picking among independent stripes.
        let mut slot = stripe.slot.lock();
        for attempt in 0..2 {
            let had_conn = slot.is_some();
            if slot.is_none() {
                *slot = Some(self.dialer.dial(ep).map_err(OrbError::Transport)?);
            }
            let Some(conn) = slot.as_mut() else { break };
            match conn.send(frame) {
                Err(e) => {
                    *slot = None;
                    if !(had_conn && attempt == 0) {
                        return Err(e.into());
                    }
                    ohpc_telemetry::inc(
                        "orb_transport_retries_total",
                        &[("protocol", &self.id.to_string())],
                    );
                }
                Ok(()) => {
                    let timeout = remaining_ns.map(Duration::from_nanos);
                    if timeout.is_some() {
                        let _ = conn.set_recv_timeout(timeout);
                    }
                    match conn.recv() {
                        Ok(reply) => {
                            if timeout.is_some() {
                                let _ = conn.set_recv_timeout(None);
                            }
                            return Ok(reply);
                        }
                        Err(e) => {
                            *slot = None;
                            return Err(OrbError::AmbiguousTransport(e));
                        }
                    }
                }
            }
        }
        Err(OrbError::Protocol("exchange retry loop exhausted".into()))
    }

    /// One-way send on a stripe: lock, lazily dial, send; a failing pooled
    /// connection is dropped and retried once with a fresh dial.
    fn send_striped(
        &self,
        ep: &Endpoint,
        set: &Arc<StripeSet>,
        frame: &[u8],
    ) -> Result<(), OrbError> {
        let Some(stripe) = set.pick() else {
            return Err(OrbError::Protocol("striped pool has no stripes".into()));
        };
        // ohpc-analyze: allow(guard-across-blocking) — one-way sends share
        // the stripe's framing discipline: the slot mutex keeps concurrent
        // writers from interleaving frames on the stripe's connection.
        let mut slot = stripe.slot.lock();
        for attempt in 0..2 {
            let had_conn = slot.is_some();
            if slot.is_none() {
                *slot = Some(self.dialer.dial(ep).map_err(OrbError::Transport)?);
            }
            let Some(conn) = slot.as_mut() else { break };
            match conn.send(frame) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    *slot = None;
                    if !(had_conn && attempt == 0) {
                        return Err(e.into());
                    }
                    ohpc_telemetry::inc(
                        "orb_transport_retries_total",
                        &[("protocol", &self.id.to_string())],
                    );
                }
            }
        }
        Err(OrbError::Protocol("oneway retry loop exhausted".into()))
    }
}

impl Drop for TransportProto {
    fn drop(&mut self) {
        // Mux reader threads hold their channels alive; closing the send
        // halves unblocks them so no reader outlives the proto. Shutdown
        // happens outside the cache lock.
        let drained: Vec<Channel> = self.channels.lock().drain().map(|(_, c)| c).collect();
        for chan in drained {
            if let Channel::Mux(m) = chan {
                m.shutdown();
            }
        }
    }
}

impl ProtoObject for TransportProto {
    fn protocol_id(&self) -> ProtocolId {
        self.id
    }

    fn applicable(
        &self,
        _pool: &ProtoPool,
        client: &Location,
        server: &Location,
        _entry: &ProtoEntry,
    ) -> bool {
        self.rule.allows(client, server)
    }

    fn invoke(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError> {
        self.invoke_with_deadline(pool, entry, req, None)
    }

    fn invoke_with_deadline(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
        remaining_ns: Option<u64>,
    ) -> Result<ReplyMessage, OrbError> {
        let ep = endpoint_of(entry)?;
        let frame = req.to_frame();
        let reply_frame = self.exchange(&ep, req.request_id.0, &frame, remaining_ns)?;
        let reply = ReplyMessage::from_frame(&reply_frame)?;
        if reply.request_id != req.request_id {
            return Err(OrbError::Protocol(format!(
                "reply id {} does not match request id {}",
                reply.request_id, req.request_id
            )));
        }
        Ok(reply)
    }

    fn invoke_oneway(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<(), OrbError> {
        debug_assert!(req.oneway, "oneway invocation requires the oneway wire flag");
        let ep = endpoint_of(entry)?;
        let frame = req.to_frame();
        for attempt in 0..2 {
            let (chan, was_cached) = self.channel(&ep)?;
            match &chan {
                Channel::Striped(set) => return self.send_striped(&ep, set, &frame),
                Channel::Mux(mux) => match mux.send_only(&frame) {
                    Ok(()) => return Ok(()),
                    Err(err) => {
                        if mux.is_dead() {
                            self.evict(&ep, &chan);
                        }
                        // send_only failures are always pre-send; a one-way
                        // either left the process or it did not.
                        let e = err.transport().clone();
                        if !(was_cached && attempt == 0) {
                            return Err(OrbError::Transport(e));
                        }
                        ohpc_telemetry::inc(
                            "orb_transport_retries_total",
                            &[("protocol", &self.id.to_string())],
                        );
                    }
                },
            }
        }
        // Both iterations return above; keep a typed error rather than a
        // panic in case the retry policy ever changes shape.
        Err(OrbError::Protocol("oneway retry loop exhausted".into()))
    }
}

/// The Nexus-based baseline protocol object: ORB frames ride inside Nexus
/// remote service requests (one handler slot per context).
pub struct NexusProto {
    id: ProtocolId,
    rule: ApplicabilityRule,
    dialer: Arc<dyn Dialer>,
    startpoints: Mutex<HashMap<Endpoint, Arc<Startpoint>>>,
}

impl NexusProto {
    /// Builds the baseline proto-object over the given transport dialer.
    pub fn new(id: ProtocolId, rule: ApplicabilityRule, dialer: Arc<dyn Dialer>) -> Self {
        Self { id, rule, dialer, startpoints: Mutex::new(HashMap::new()) }
    }

    fn startpoint(&self, ep: &Endpoint) -> Result<Arc<Startpoint>, OrbError> {
        if let Some(sp) = self.cached_startpoint(ep) {
            return Ok(sp);
        }
        let sp = Arc::new(
            Startpoint::connect(self.dialer.as_ref(), ep).map_err(nexus_to_orb)?,
        );
        Ok(self.install_startpoint(ep, sp))
    }

    fn cached_startpoint(&self, ep: &Endpoint) -> Option<Arc<Startpoint>> {
        self.startpoints.lock().get(ep).cloned()
    }

    /// Re-checks under the lock before publishing: a racing caller's earlier
    /// startpoint wins (the duplicate dial must not overwrite — and thereby
    /// leak — the connection other callers already share).
    fn install_startpoint(&self, ep: &Endpoint, sp: Arc<Startpoint>) -> Arc<Startpoint> {
        let (winner, raced) = {
            let mut map = self.startpoints.lock();
            match map.get(ep) {
                Some(existing) => (existing.clone(), true),
                None => {
                    map.insert(ep.clone(), sp.clone());
                    (sp, false)
                }
            }
        };
        if raced {
            ohpc_telemetry::inc(
                "orb_double_dial_avoided_total",
                &[("protocol", &self.id.to_string())],
            );
        }
        winner
    }

    /// Identity-checked eviction: only removes the cached startpoint if it
    /// is the one the caller saw fail, so a stale failure report cannot tear
    /// down a replacement a racing caller already connected.
    fn forget_startpoint(&self, ep: &Endpoint, stale: &Arc<Startpoint>) {
        let mut map = self.startpoints.lock();
        let is_current = match map.get(ep) {
            Some(cur) => Arc::ptr_eq(cur, stale),
            None => false,
        };
        if is_current {
            map.remove(ep);
        }
    }
}

fn nexus_to_orb(e: NexusError) -> OrbError {
    match e {
        NexusError::Transport(t) => OrbError::Transport(t),
        NexusError::NoSuchHandler(h) => {
            OrbError::Protocol(format!("nexus service lacks ORB handler {h}"))
        }
        NexusError::Handler(m) => OrbError::Protocol(format!("nexus handler: {m}")),
        NexusError::Protocol(m) => OrbError::Protocol(m),
    }
}

impl ProtoObject for NexusProto {
    fn protocol_id(&self) -> ProtocolId {
        self.id
    }

    fn applicable(
        &self,
        _pool: &ProtoPool,
        client: &Location,
        server: &Location,
        _entry: &ProtoEntry,
    ) -> bool {
        self.rule.allows(client, server)
    }

    fn invoke(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError> {
        self.invoke_with_deadline(pool, entry, req, None)
    }

    fn invoke_with_deadline(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
        remaining_ns: Option<u64>,
    ) -> Result<ReplyMessage, OrbError> {
        let ep = endpoint_of(entry)?;
        let sp = self.startpoint(&ep)?;
        let frame = req.to_frame();
        let mut args = XdrWriter::with_capacity(frame.len() + 8);
        args.put_fixed_opaque(&frame);
        let deadline = remaining_ns.map(std::time::Duration::from_nanos);
        let reply_bytes = match sp.rsr_reply_deadline(NEXUS_ORB_HANDLER, &args, deadline) {
            Ok(b) => b,
            Err(e) => {
                self.forget_startpoint(&ep, &sp);
                // The RSR layer merges send and receive into one call, so a
                // transport failure here cannot be proven to predate
                // delivery: classify it as ambiguous.
                return Err(match nexus_to_orb(e) {
                    OrbError::Transport(t) => OrbError::AmbiguousTransport(t),
                    other => other,
                });
            }
        };
        let reply = ReplyMessage::from_frame(&reply_bytes)?;
        if reply.request_id != req.request_id {
            return Err(OrbError::Protocol("nexus reply id mismatch".into()));
        }
        Ok(reply)
    }

    fn invoke_oneway(
        &self,
        _pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<(), OrbError> {
        debug_assert!(req.oneway, "oneway invocation requires the oneway wire flag");
        let ep = endpoint_of(entry)?;
        let sp = self.startpoint(&ep)?;
        let frame = req.to_frame();
        let mut args = XdrWriter::with_capacity(frame.len() + 8);
        args.put_fixed_opaque(&frame);
        // A genuine Nexus one-way remote service request.
        if let Err(e) = sp.rsr(NEXUS_ORB_HANDLER, &args) {
            self.forget_startpoint(&ep, &sp);
            return Err(nexus_to_orb(e));
        }
        Ok(())
    }

    fn describe(&self, _entry: &ProtoEntry) -> String {
        format!("nexus({})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, RequestId};
    use bytes::Bytes;
    use ohpc_transport::mem::MemFabric;
    use ohpc_transport::Listener as _;

    fn request(id: u64, body: &'static [u8]) -> RequestMessage {
        RequestMessage {
            request_id: RequestId(id),
            object: ObjectId(1),
            method: 0,
            oneway: false,
            glue: None,
            body: Bytes::from_static(body),
            trace: None,
        }
    }

    #[test]
    fn endpoint_of_rejects_glue_and_garbage() {
        let glue = ProtoEntry::glue(1, vec![], ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"));
        assert!(endpoint_of(&glue).is_err());
        let bad = ProtoEntry::endpoint(ProtocolId::TCP, "not-an-endpoint");
        assert!(endpoint_of(&bad).is_err());
    }

    #[test]
    fn invoke_roundtrip_and_connection_reuse() {
        let fabric = MemFabric::new();
        let mut listener = fabric.listen_on(5);

        // Echo server: replies Ok with the request body reversed.
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            for _ in 0..2 {
                let frame = conn.recv().unwrap();
                let req = RequestMessage::from_frame(&frame).unwrap();
                let mut body = req.body.to_vec();
                body.reverse();
                let reply = ReplyMessage::ok(req.request_id, Bytes::from(body));
                conn.send(&reply.to_frame()).unwrap();
            }
        });

        let proto = TransportProto::new(
            ProtocolId::SHM,
            ApplicabilityRule::Always,
            Arc::new(fabric),
        );
        let entry = ProtoEntry::endpoint(ProtocolId::SHM, "mem://5");
        let pool = ProtoPool::new();
        for i in 0..2u64 {
            let reply = proto.invoke(&pool, &entry, &request(i, b"abc")).unwrap();
            assert_eq!(&reply.body[..], b"cba");
        }
        assert_eq!(proto.cached_connections(), 1, "one endpoint, one cached channel");
        server.join().unwrap();
    }

    #[test]
    fn dead_connection_is_evicted() {
        let fabric = MemFabric::new();
        let listener = fabric.listen_on(6);
        let proto =
            TransportProto::new(ProtocolId::SHM, ApplicabilityRule::Always, Arc::new(fabric));
        let entry = ProtoEntry::endpoint(ProtocolId::SHM, "mem://6");
        let pool = ProtoPool::new();
        // Server accepts, consumes the request, then drops without replying —
        // the client's send succeeds and its recv fails.
        let h = std::thread::spawn({
            let mut listener = listener;
            move || {
                let mut conn = listener.accept().unwrap();
                let _ = conn.recv();
                drop(conn);
            }
        });
        let err = proto.invoke(&pool, &entry, &request(0, b"")).unwrap_err();
        // The frame was sent before the peer vanished, so the failure is
        // ambiguous — the server may have processed it.
        assert!(matches!(err, OrbError::AmbiguousTransport(_)), "{err}");
        assert_eq!(proto.cached_connections(), 0, "dead channel evicted");
        h.join().unwrap();
    }

    /// Regression test for the key-based-eviction bug: a straggler holding a
    /// reference to a *replaced* channel must not evict the fresh one a
    /// racing caller installed under the same endpoint key.
    #[test]
    fn eviction_is_by_identity_not_by_key() {
        let fabric = MemFabric::new();
        let _listener = fabric.listen_on(7);
        let proto =
            TransportProto::new(ProtocolId::SHM, ApplicabilityRule::Always, Arc::new(fabric));
        let ep = Endpoint::Mem(7);

        let (first, cached) = proto.channel(&ep).unwrap();
        assert!(!cached);
        // A racing caller saw `first` fail, evicted it, and rebuilt.
        proto.evict(&ep, &first);
        let (second, cached) = proto.channel(&ep).unwrap();
        assert!(!cached);
        assert!(!first.same_identity(&second));

        // The straggler now reports its stale failure. Key-based eviction
        // would tear down `second`; identity eviction must keep it.
        proto.evict(&ep, &first);
        assert_eq!(proto.cached_connections(), 1, "fresh channel survived stale eviction");
        let (current, cached) = proto.channel(&ep).unwrap();
        assert!(cached);
        assert!(current.same_identity(&second));

        // Evicting with the right identity still works.
        proto.evict(&ep, &second);
        assert_eq!(proto.cached_connections(), 0);
        for chan in [first, second] {
            if let Channel::Mux(m) = chan {
                m.shutdown();
            }
        }
    }

    /// A dialer that parks every caller on a barrier inside `dial`, forcing
    /// racing callers into the widest possible check-then-install window.
    struct GateDialer {
        inner: MemFabric,
        gate: Arc<std::sync::Barrier>,
    }

    impl Dialer for GateDialer {
        fn dial(&self, ep: &Endpoint) -> Result<Box<dyn Connection>, TransportError> {
            self.gate.wait();
            self.inner.dial(ep)
        }
    }

    /// Regression test for the check-drop-dial-relock race: both callers
    /// dial, but exactly one channel may be published — the loser must share
    /// the winner's rather than overwrite (and leak) it.
    #[test]
    fn racing_dials_share_one_channel() {
        let fabric = MemFabric::new();
        let _listener = fabric.listen_on(8);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let proto = Arc::new(TransportProto::new(
            ProtocolId::SHM,
            ApplicabilityRule::Always,
            Arc::new(GateDialer { inner: fabric, gate }),
        ));
        let ep = Endpoint::Mem(8);
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let proto = proto.clone();
                let ep = ep.clone();
                std::thread::spawn(move || proto.channel(&ep).unwrap().0)
            })
            .collect();
        let chans: Vec<Channel> =
            racers.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(proto.cached_connections(), 1, "the race must not publish two channels");
        assert!(chans[0].same_identity(&chans[1]), "both racers share one channel");
    }

    /// `PoolMode::Striped(1)` reproduces the historical serialized wire.
    #[test]
    fn striped_mode_round_trips() {
        let fabric = MemFabric::new();
        let mut listener = fabric.listen_on(10);
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let frame = conn.recv().unwrap();
            let req = RequestMessage::from_frame(&frame).unwrap();
            conn.send(&ReplyMessage::ok(req.request_id, req.body).to_frame()).unwrap();
        });
        let proto =
            TransportProto::new(ProtocolId::SHM, ApplicabilityRule::Always, Arc::new(fabric))
                .with_pool_mode(PoolMode::Striped(1));
        let entry = ProtoEntry::endpoint(ProtocolId::SHM, "mem://10");
        let reply = proto.invoke(&ProtoPool::new(), &entry, &request(3, b"stripe")).unwrap();
        assert_eq!(&reply.body[..], b"stripe");
        server.join().unwrap();
    }

    /// A hung (not crashed) server must not block past the deadline: the
    /// timeout surfaces as ambiguous, and the still-live mux stays pooled.
    #[test]
    fn hung_server_times_out_as_ambiguous() {
        let fabric = MemFabric::new();
        let mut listener = fabric.listen_on(11);
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let _ = conn.recv();
            // Hold the connection open well past the client's deadline.
            std::thread::sleep(Duration::from_millis(300));
            drop(conn);
        });
        let proto =
            TransportProto::new(ProtocolId::SHM, ApplicabilityRule::Always, Arc::new(fabric));
        let entry = ProtoEntry::endpoint(ProtocolId::SHM, "mem://11");
        let err = proto
            .invoke_with_deadline(&ProtoPool::new(), &entry, &request(4, b""), Some(30_000_000))
            .unwrap_err();
        assert!(
            matches!(err, OrbError::AmbiguousTransport(TransportError::Timeout)),
            "{err}"
        );
        assert_eq!(proto.cached_connections(), 1, "a live mux survives a deadline timeout");
        server.join().unwrap();
    }

    /// Regression test for the same key-vs-identity bug on the Nexus path.
    #[test]
    fn nexus_startpoint_eviction_is_by_identity() {
        let fabric = MemFabric::new();
        let _listener = fabric.listen_on(9);
        let proto = NexusProto::new(
            ProtocolId::NEXUS_TCP,
            ApplicabilityRule::Always,
            Arc::new(fabric),
        );
        let ep = Endpoint::Mem(9);
        let first = proto.startpoint(&ep).unwrap();
        // A racing caller evicted the failed startpoint and reconnected.
        proto.forget_startpoint(&ep, &first);
        let second = proto.startpoint(&ep).unwrap();
        assert!(!Arc::ptr_eq(&first, &second));
        // The straggler's stale report must not tear down the fresh one.
        proto.forget_startpoint(&ep, &first);
        let third = proto.startpoint(&ep).unwrap();
        assert!(Arc::ptr_eq(&second, &third), "fresh startpoint survived stale eviction");
    }
}
