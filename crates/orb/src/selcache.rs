//! Per-GP selection cache with epoch invalidation — the selection fast path.
//!
//! The paper's adaptivity rule ("the system selects an appropriate
//! proto-object for each individual remote request") is preserved by
//! *revalidation*, not by re-walking: a [`GlobalPointer`](crate::gp::GlobalPointer)
//! memoizes the last steady [`Selection`] together with the epoch values of
//! every input that could change it, and four atomic loads before each
//! attempt decide between serving the memo and falling back to the full
//! `select_with_health` walk.
//!
//! # Cache key
//!
//! | component | bumped by |
//! |---|---|
//! | `GlobalPointer::or_epoch` | `rebind` (incl. `Moved` forwards), effective `prefer`/`ban`, health-registry swaps |
//! | `ProtoPool::epoch` | pool membership edits (`push`/`remove`) |
//! | registry `Arc` pointer identity | `set_health_registry` (defense in depth against epoch reuse across registries) |
//! | `HealthRegistry::generation` | every breaker state transition |
//!
//! Any mismatch re-walks and refills. Mutation sites are machine-checked by
//! ohpc-analyze's `epoch-bump` rule, so "someone forgot the bump" is a CI
//! failure, not a stale route served in production.
//!
//! # What is never cached
//!
//! Only *steady* selections ([`Selection::steady`]) are stored: if any
//! breaker skipped a row (or every row was denied and the fallback probe
//! won), the choice depends on breaker cooldowns — state that changes with
//! time alone, without a generation bump until the next walk observes it.
//! Breaker-influenced attempts therefore always re-walk, which is exactly
//! the degraded path where the walk's per-row telemetry is worth its cost.
//!
//! # Hit-path cost
//!
//! A hit performs no heap allocation: the describe string is pre-rendered
//! (`Arc<str>`), the [`HealthKey`] is pre-computed, and all counters —
//! including the per-protocol `orb_selection_total` — are pre-resolved
//! `Arc<Counter>` handles ticked with one relaxed `fetch_add` each.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use ohpc_resilience::{HealthKey, HealthRegistry};
use ohpc_telemetry::Counter;

use crate::ids::ObjectId;
use crate::selection::Selection;

/// Process-wide switch: `OHPC_SELECTION_CACHE=0` (or `off`/`false`) disables
/// the cache, making every attempt a full walk — the A/B lever the
/// `bench_selection_json` harness and a production rollback both use.
pub(crate) fn cache_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("OHPC_SELECTION_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Pre-resolved `orb_selection_cache_total{outcome=…}` counters. Resolved
/// once per process; the hit path must not touch the registry's lock-and-
/// allocate lookup.
fn outcome_counter(
    cell: &'static OnceLock<Arc<Counter>>,
    outcome: &'static str,
) -> &'static Arc<Counter> {
    cell.get_or_init(|| {
        ohpc_telemetry::counter("orb_selection_cache_total", &[("outcome", outcome)])
    })
}

fn hit_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    outcome_counter(&C, "hit")
}

fn miss_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    outcome_counter(&C, "miss")
}

fn invalidated_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    outcome_counter(&C, "invalidated")
}

/// One memoized attempt-ready selection: everything `attempt_once` needs,
/// pre-rendered so a hit allocates nothing.
pub(crate) struct CachedSelection {
    /// The selection itself (proto `Arc`, entry clone, index, steady flag).
    pub selection: Selection,
    /// `or.object` snapshot — guarded by the same `or_epoch` as the table.
    pub object: ObjectId,
    /// Pre-rendered `selection.describe()` (e.g. `glue[timeout]->tcp`).
    pub described: Arc<str>,
    /// Pre-computed health key of the selected entry's terminal endpoint.
    pub key: HealthKey,
    /// Pre-resolved `orb_selection_total{protocol,outcome="selected"}` so
    /// hits keep the per-request selection count honest without a registry
    /// lookup.
    selected_counter: Arc<Counter>,
    or_epoch: u64,
    pool_epoch: u64,
    health_ptr: usize,
    health_gen: u64,
}

/// Identity of a registry `Arc` for key comparison.
pub(crate) fn registry_ptr(health: &Arc<HealthRegistry>) -> usize {
    Arc::as_ptr(health) as usize
}

impl CachedSelection {
    /// Builds a memo stamped with the epoch values read *before* the walk
    /// that produced `selection` (see the fill-race note on
    /// [`SelectionCache::lookup`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        selection: Selection,
        object: ObjectId,
        described: Arc<str>,
        key: HealthKey,
        or_epoch: u64,
        pool_epoch: u64,
        health_ptr: usize,
        health_gen: u64,
    ) -> Self {
        let protocol = selection.entry.id.to_string();
        let selected_counter = ohpc_telemetry::counter(
            "orb_selection_total",
            &[("protocol", &protocol), ("outcome", "selected")],
        );
        Self {
            selection,
            object,
            described,
            key,
            selected_counter,
            or_epoch,
            pool_epoch,
            health_ptr,
            health_gen,
        }
    }

    fn valid_for(&self, or_epoch: u64, pool_epoch: u64, health_ptr: usize, health_gen: u64) -> bool {
        self.or_epoch == or_epoch
            && self.pool_epoch == pool_epoch
            && self.health_ptr == health_ptr
            && self.health_gen == health_gen
    }
}

/// Outcome of a cache lookup, for telemetry and refill decisions.
pub(crate) enum Lookup {
    /// Keys matched: serve the memo.
    Hit(Arc<CachedSelection>),
    /// Slot empty — first use (or the cache is disabled).
    Miss,
    /// Slot occupied but at least one key moved.
    Invalidated,
}

/// The per-GP slot. One entry: a GP talks to one object, and its selection
/// changes only when an input epoch does.
#[derive(Default)]
pub(crate) struct SelectionCache {
    slot: Mutex<Option<Arc<CachedSelection>>>,
    /// Hits served since the last fill — cheap observability for tests and
    /// the introspection snapshot (`orb_selection_cache_total` is global;
    /// this is per-GP).
    hits: AtomicU64,
}

impl SelectionCache {
    /// Revalidates the memo against the current epoch values. Counts the
    /// outcome on the global `orb_selection_cache_total{outcome}` counters.
    ///
    /// Fill-race discipline: callers must read all four key values *before*
    /// walking the table, and stamp the memo with those pre-walk values. If
    /// a mutation lands between the key read and the walk, the memo is
    /// stamped with the old epoch while current counters have moved on — the
    /// next lookup misses and re-walks, which is the safe direction. Reading
    /// keys after the walk would allow the reverse: a fresh epoch stamped
    /// onto a stale walk, served forever.
    pub(crate) fn lookup(
        &self,
        or_epoch: u64,
        pool_epoch: u64,
        health_ptr: usize,
        health_gen: u64,
    ) -> Lookup {
        let slot = self.slot.lock();
        match &*slot {
            Some(c) if c.valid_for(or_epoch, pool_epoch, health_ptr, health_gen) => {
                let c = c.clone();
                drop(slot);
                self.hits.fetch_add(1, Ordering::Relaxed);
                hit_counter().inc();
                c.selected_counter.inc();
                Lookup::Hit(c)
            }
            Some(_) => {
                drop(slot);
                invalidated_counter().inc();
                Lookup::Invalidated
            }
            None => {
                drop(slot);
                miss_counter().inc();
                Lookup::Miss
            }
        }
    }

    /// Installs a freshly walked steady selection.
    pub(crate) fn fill(&self, cached: Arc<CachedSelection>) {
        *self.slot.lock() = Some(cached);
    }

    /// Hits served since construction.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
