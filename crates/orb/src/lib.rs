//! The Open HPC++ open ORB.
//!
//! This crate is the paper's primary contribution: a CORBA-like object
//! request broker built on the *Open Implementation* principle — applications
//! can see and steer the protocol decisions the ORB makes, without touching
//! the mechanics of any particular protocol.
//!
//! # The model
//!
//! * A server [`Context`](context::Context) (the HPC++ "virtual address
//!   space") hosts objects implementing [`RemoteObject`](skeleton::RemoteObject).
//! * Registering an object yields an [`ObjectReference`](objref::ObjectReference)
//!   (OR): the object's identity plus a **preference-ordered protocol table**.
//!   Each [`ProtoEntry`](objref::ProtoEntry) names a protocol and carries its
//!   proto-data (an endpoint, or — for the **glue protocol** — a capability
//!   chain wrapped around an inner entry).
//! * A client holds a [`GlobalPointer`](gp::GlobalPointer) (GP) wrapping an
//!   OR, and a process-local [`ProtoPool`](proto::ProtoPool) of
//!   [`ProtoObject`](proto::ProtoObject)s. Each remote invocation walks the
//!   OR's table in preference order and uses the **first entry whose protocol
//!   is in the pool and is applicable** for the current (client, server)
//!   location pair — the paper's automatic run-time protocol selection.
//! * [`Capability`](capability::Capability) objects (encryption,
//!   authentication, request budgets, compression, …) ride in glue entries.
//!   On the way out each capability `process`es the request body in chain
//!   order; the server-side glue class `unprocess`es in reverse; replies flow
//!   back through the same chain mirrored. Capabilities are *data* in the OR,
//!   so they can be handed between processes and swapped at run time.
//! * When an object migrates, the old context keeps a tombstone answering
//!   `ObjectMoved(new OR)`; GPs rebind and re-run selection, which is how a
//!   client transparently drops authentication or picks up shared memory as
//!   locations change (the paper's Figures 3 and 4).
//!
//! # Quick taste
//!
//! See `examples/quickstart.rs` in the repository root for a complete
//! client/server round trip, and the [`remote_interface!`] macro for typed
//! stubs and skeletons.

#![warn(missing_docs)]

pub mod capability;
pub mod context;
pub mod error;
pub mod glue;
pub mod gp;
pub mod group;
pub mod ids;
pub mod introspect;
pub mod message;
pub mod objref;
pub mod proto;
mod selcache;
pub mod selection;
pub mod skeleton;
pub mod transport_proto;

pub use capability::{CapError, Capability, CapabilityRegistry, CapabilitySpec, CapMeta, Direction};
pub use context::{Context, ContextHandle, ProtoAdvert};
pub use error::OrbError;
pub use glue::GlueProto;
pub use gp::GlobalPointer;
pub use group::GpGroup;
pub use ids::{ContextId, ObjectId, ProtocolId, RequestId};
pub use introspect::{
    introspection_object_id, ContextIntrospection, IntrospectionApi, IntrospectionClient,
    IntrospectionSkeleton, INTROSPECTION_LOCAL_ID,
};
pub use message::{ReplyMessage, ReplyStatus, RequestMessage};
pub use objref::{ObjectReference, ProtoData, ProtoEntry};
pub use proto::{ApplicabilityRule, ProtoObject, ProtoPool};
pub use skeleton::{MethodError, RemoteObject};
pub use transport_proto::{NexusProto, PoolMode, TransportProto};

// Re-export the location vocabulary: every applicability decision speaks it.
pub use ohpc_netsim::{LanId, LinkClass, Location, MachineId, SiteId};

/// Dispatch executors, re-exported so servers can tune dispatch without a
/// direct `ohpc-runtime` dependency.
pub use ohpc_runtime::{
    AdmissionController, Executor, InlineExecutor, ThreadPerRequestExecutor, WorkStealingPool,
};

// Hidden re-export so `remote_interface!` expansions resolve XDR items
// without requiring consumers to depend on ohpc-xdr directly.
#[doc(hidden)]
pub use ohpc_xdr as __xdr;
