//! Identifier newtypes used across the ORB.

use ohpc_xdr::{XdrDecode, XdrEncode, XdrError, XdrReader, XdrWriter};

macro_rules! id_u64 {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl XdrEncode for $name {
            fn encode(&self, w: &mut XdrWriter) {
                w.put_u64(self.0);
            }
        }
        impl XdrDecode for $name {
            fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
                Ok($name(r.get_u64()?))
            }
        }
        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

id_u64! {
    /// Identifies a server object within the whole application. Allocated by
    /// the context that first registers the object; globally unique because
    /// it embeds the context id in the high bits.
    ObjectId
}

id_u64! {
    /// Identifies a context (virtual address space).
    ContextId
}

id_u64! {
    /// Per-connection request sequence number.
    RequestId
}

impl ObjectId {
    /// Builds an object id from its owning context and a local counter.
    pub fn compose(ctx: ContextId, local: u32) -> Self {
        ObjectId((ctx.0 << 32) | local as u64)
    }

    /// The context that allocated this id.
    pub fn context(self) -> ContextId {
        ContextId(self.0 >> 32)
    }

    /// The context-local counter part of this id.
    pub fn local(self) -> u32 {
        self.0 as u32
    }
}

/// Identifies a communication protocol in OR tables and proto-pools.
///
/// The constants below are conventions used by the built-in proto-objects;
/// applications may mint their own ids for custom protocols (the paper's
/// "users write their own proto-classes" aspect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtocolId(pub u16);

impl ProtocolId {
    /// TCP with XDR encoding.
    pub const TCP: ProtocolId = ProtocolId(1);
    /// Same-machine shared-memory channel.
    pub const SHM: ProtocolId = ProtocolId(2);
    /// Nexus remote-service-request over TCP.
    pub const NEXUS_TCP: ProtocolId = ProtocolId(3);
    /// The glue pseudo-protocol carrying a capability chain.
    pub const GLUE: ProtocolId = ProtocolId(100);
}

impl XdrEncode for ProtocolId {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_u32(self.0 as u32);
    }
}

impl XdrDecode for ProtocolId {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let v = r.get_u32()?;
        u16::try_from(v)
            .map(ProtocolId)
            .map_err(|_| XdrError::custom(format!("protocol id out of range: {v}")))
    }
}

impl std::fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProtocolId::TCP => write!(f, "tcp"),
            ProtocolId::SHM => write!(f, "shm"),
            ProtocolId::NEXUS_TCP => write!(f, "nexus-tcp"),
            ProtocolId::GLUE => write!(f, "glue"),
            ProtocolId(other) => write!(f, "proto-{other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohpc_xdr::{decode_from_slice, encode_to_vec};

    #[test]
    fn object_id_composition() {
        let ctx = ContextId(7);
        let id = ObjectId::compose(ctx, 42);
        assert_eq!(id.context(), ctx);
        assert_eq!(id.local(), 42);
        assert_eq!(id.0 & 0xFFFF_FFFF, 42);
    }

    #[test]
    fn ids_roundtrip_xdr() {
        let id = ObjectId(0xDEADBEEF_12345678);
        assert_eq!(decode_from_slice::<ObjectId>(&encode_to_vec(&id)).unwrap(), id);
        let p = ProtocolId::NEXUS_TCP;
        assert_eq!(decode_from_slice::<ProtocolId>(&encode_to_vec(&p)).unwrap(), p);
    }

    #[test]
    fn protocol_id_rejects_oversized() {
        let buf = encode_to_vec(&70000u32);
        assert!(decode_from_slice::<ProtocolId>(&buf).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolId::TCP.to_string(), "tcp");
        assert_eq!(ProtocolId::GLUE.to_string(), "glue");
        assert_eq!(ProtocolId(9).to_string(), "proto-9");
        assert_eq!(ObjectId(3).to_string(), "ObjectId#3");
    }
}
