//! The capability abstraction.
//!
//! A capability encapsulates one remote-access attribute — encryption,
//! authentication, a request budget, compression, auditing. Concrete
//! implementations live in the `ohpc-caps` crate; this module defines:
//!
//! * [`Capability`] — the transform/inverse-transform contract plus the
//!   applicability predicate the selection algorithm consults;
//! * [`CapabilitySpec`] — the *wire form* of a capability (name + config),
//!   which is what ORs carry and processes exchange;
//! * [`CapabilityRegistry`] — per-process factory turning specs into live
//!   instances (the local trust environment: key stores, budgets);
//! * chain helpers enforcing the paper's ordering: sender applies the chain
//!   in order, receiver inverts it in reverse order, replies mirror it.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use ohpc_netsim::Location;
use ohpc_xdr::{XdrDecode, XdrEncode, XdrError, XdrReader, XdrWriter};

/// Immutable facts about the call a capability is processing: the target
/// object, the method slot and the request sequence number. Capabilities use
/// these to scope decisions (per-method ACLs) and to bind MACs to the header
/// so a recorded body cannot be replayed against a different method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallInfo {
    /// Target object.
    pub object: crate::ids::ObjectId,
    /// Method slot.
    pub method: u32,
    /// Request sequence number.
    pub request_id: crate::ids::RequestId,
}

impl CallInfo {
    /// Canonical byte encoding, for MAC computations.
    pub fn to_bytes(&self) -> [u8; 20] {
        let mut out = [0u8; 20];
        // ohpc-analyze: allow(panic-freedom) — constant ranges within [u8; 20]
        out[..8].copy_from_slice(&self.object.0.to_be_bytes());
        // ohpc-analyze: allow(panic-freedom) — constant ranges within [u8; 20]
        out[8..12].copy_from_slice(&self.method.to_be_bytes());
        // ohpc-analyze: allow(panic-freedom) — constant ranges within [u8; 20]
        out[12..20].copy_from_slice(&self.request_id.0.to_be_bytes());
        out
    }
}

/// Which way a message is travelling through the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    Request,
    /// Server → client.
    Reply,
}

impl Direction {
    /// Stable label used as the `dir` telemetry label value.
    pub fn as_label(self) -> &'static str {
        match self {
            Direction::Request => "request",
            Direction::Reply => "reply",
        }
    }
}

/// Capability failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapError {
    /// The capability refuses the operation (budget exhausted, bad MAC,
    /// unauthenticated peer, lease expired, …). Deny reasons travel to the
    /// peer as `CapabilityDenied`.
    Denied(String),
    /// The request's time budget expired before dispatch (the deadline
    /// cap's shed path). Travels to the peer as `DeadlineExpired` — a
    /// distinct, non-retryable class — not as a capability denial.
    Expired(String),
    /// The transform itself failed (corrupt data, bad config).
    Failed(String),
    /// A spec named a capability the local registry cannot build.
    Unknown(String),
}

impl std::fmt::Display for CapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapError::Denied(m) => write!(f, "denied: {m}"),
            CapError::Expired(m) => write!(f, "expired: {m}"),
            CapError::Failed(m) => write!(f, "failed: {m}"),
            CapError::Unknown(name) => write!(f, "unknown capability '{name}'"),
        }
    }
}

impl std::error::Error for CapError {}

/// Per-message, per-capability metadata side channel.
///
/// `process` writes entries (a nonce, a MAC, a token); the bytes travel in
/// the frame's glue section; the receiving side's `unprocess` reads them.
#[derive(Debug, Default, Clone)]
pub struct CapMeta {
    entries: HashMap<String, Bytes>,
}

impl CapMeta {
    /// Empty metadata.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `key`.
    pub fn set(&mut self, key: &str, value: impl Into<Bytes>) {
        self.entries.insert(key.to_string(), value.into());
    }

    /// Fetches `key`.
    pub fn get(&self, key: &str) -> Option<&Bytes> {
        self.entries.get(key)
    }

    /// Fetches `key` or errors with a consistent message.
    pub fn require(&self, key: &str) -> Result<&Bytes, CapError> {
        self.get(key)
            .ok_or_else(|| CapError::Failed(format!("missing capability metadata '{key}'")))
    }

    /// Serializes to the wire blob carried in the glue section.
    pub fn to_bytes(&self) -> Bytes {
        let mut w = XdrWriter::new();
        // deterministic order so MACs over metadata are stable
        let mut entries: Vec<(&String, &Bytes)> = self.entries.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_array_len(entries.len());
        for (k, v) in entries {
            w.put_string(k);
            w.put_opaque(v);
        }
        w.finish()
    }

    /// Parses a wire blob.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, XdrError> {
        let mut r = XdrReader::new(buf);
        let n = r.get_array_len()?;
        if n > 64 {
            return Err(XdrError::custom("capability metadata too large"));
        }
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.get_string()?;
            let v = Bytes::copy_from_slice(r.get_opaque()?);
            entries.insert(k, v);
        }
        Ok(Self { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A remote-access capability.
///
/// Invariant (checked by property tests across all shipped capabilities):
/// for any body `b` and fresh meta `m`,
/// `unprocess(dir, &m', process(dir, &mut m', b)) == b` where `m'` is the
/// metadata written by `process`.
pub trait Capability: Send + Sync {
    /// Stable wire name (matches the spec that built this instance).
    fn name(&self) -> &str;

    /// Whether this capability wants to be active for a client at `client`
    /// talking to a server at `server`. A glue entry is applicable only if
    /// *all* its capabilities are (AND-composition, per the paper).
    fn applicable(&self, client: &Location, server: &Location) -> bool {
        let _ = (client, server);
        true
    }

    /// Sender-side transform. May write metadata for the receiver and may
    /// deny (e.g. client-side budget exhausted).
    fn process(
        &self,
        dir: Direction,
        call: &CallInfo,
        meta: &mut CapMeta,
        body: Bytes,
    ) -> Result<Bytes, CapError>;

    /// Receiver-side inverse. Reads the sender's metadata; may deny (bad
    /// MAC, missing token, server-side budget).
    fn unprocess(
        &self,
        dir: Direction,
        call: &CallInfo,
        meta: &CapMeta,
        body: Bytes,
    ) -> Result<Bytes, CapError>;
}

impl std::fmt::Debug for dyn Capability + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Capability({})", self.name())
    }
}

/// Wire form of a capability: its name plus opaque configuration.
///
/// Config carries *public* parameters (key ids, limits, codec choice) — never
/// key material. The registry combines config with local secrets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapabilitySpec {
    /// Registry name.
    pub name: String,
    /// Opaque, capability-defined configuration.
    pub config: Bytes,
}

impl CapabilitySpec {
    /// Spec with empty config.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), config: Bytes::new() }
    }

    /// Spec with config bytes.
    pub fn with_config(name: impl Into<String>, config: impl Into<Bytes>) -> Self {
        Self { name: name.into(), config: config.into() }
    }
}

impl XdrEncode for CapabilitySpec {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_string(&self.name);
        w.put_opaque(&self.config);
    }
}

impl XdrDecode for CapabilitySpec {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            name: r.get_string()?,
            config: Bytes::copy_from_slice(r.get_opaque()?),
        })
    }
}

/// Factory closure building a capability instance from its spec.
pub type CapabilityFactory =
    Box<dyn Fn(&CapabilitySpec) -> Result<Arc<dyn Capability>, CapError> + Send + Sync>;

/// Per-process capability factory registry.
///
/// Both sides of a connection build instances from the same spec but their
/// *own* registries — a process that lacks the keys for "encrypt-chacha20"
/// simply cannot construct it, which is the capability-security property.
#[derive(Default)]
pub struct CapabilityRegistry {
    factories: RwLock<HashMap<String, CapabilityFactory>>,
}

impl CapabilityRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory under `name`, replacing any existing one.
    pub fn register<F>(&self, name: &str, factory: F)
    where
        F: Fn(&CapabilitySpec) -> Result<Arc<dyn Capability>, CapError> + Send + Sync + 'static,
    {
        self.factories.write().insert(name.to_string(), Box::new(factory));
    }

    /// Builds an instance for `spec`.
    pub fn build(&self, spec: &CapabilitySpec) -> Result<Arc<dyn Capability>, CapError> {
        let factories = self.factories.read();
        let f = factories.get(&spec.name).ok_or_else(|| CapError::Unknown(spec.name.clone()))?;
        f(spec)
    }

    /// Builds a whole chain, failing on the first unknown capability.
    pub fn build_chain(
        &self,
        specs: &[CapabilitySpec],
    ) -> Result<Vec<Arc<dyn Capability>>, CapError> {
        specs.iter().map(|s| self.build(s)).collect()
    }

    /// True if `name` can be built here.
    pub fn knows(&self, name: &str) -> bool {
        self.factories.read().contains_key(name)
    }
}

/// Sender side: applies `caps` in chain order, returning the transformed body
/// and each capability's metadata (in chain order) for the glue section.
///
/// Each transform is timed into `orb_cap_process_ns{cap,dir}` (including
/// denials — a rejected budget check still costs time worth seeing).
pub fn process_chain(
    caps: &[Arc<dyn Capability>],
    dir: Direction,
    call: &CallInfo,
    mut body: Bytes,
) -> Result<(Bytes, Vec<(String, Bytes)>), CapError> {
    let registry = ohpc_telemetry::Registry::global();
    let clock = registry.clock();
    let mut metas = Vec::with_capacity(caps.len());
    for cap in caps {
        let mut meta = CapMeta::new();
        let _span = ohpc_telemetry::trace_span_with(
            "cap_process",
            &[("cap", cap.name()), ("dir", dir.as_label())],
        );
        let t0 = clock.now_ns();
        let result = cap.process(dir, call, &mut meta, body);
        registry
            .histogram("orb_cap_process_ns", &[("cap", cap.name()), ("dir", dir.as_label())])
            .observe(clock.now_ns().saturating_sub(t0));
        body = result?;
        metas.push((cap.name().to_string(), meta.to_bytes()));
    }
    Ok((body, metas))
}

/// Receiver side: applies inverses in reverse chain order. `metas` must be
/// the sender's chain-order metadata.
///
/// Each inverse transform is timed into `orb_cap_unprocess_ns{cap,dir}`.
pub fn unprocess_chain(
    caps: &[Arc<dyn Capability>],
    dir: Direction,
    call: &CallInfo,
    metas: &[(String, Bytes)],
    mut body: Bytes,
) -> Result<Bytes, CapError> {
    if caps.len() != metas.len() {
        return Err(CapError::Failed(format!(
            "chain length mismatch: {} capabilities, {} metadata blocks",
            caps.len(),
            metas.len()
        )));
    }
    let registry = ohpc_telemetry::Registry::global();
    let clock = registry.clock();
    for (cap, (name, meta_bytes)) in caps.iter().zip(metas.iter()).rev() {
        if cap.name() != name {
            return Err(CapError::Failed(format!(
                "chain order mismatch: expected '{}', got '{name}'",
                cap.name()
            )));
        }
        let meta = CapMeta::from_bytes(meta_bytes)
            .map_err(|e| CapError::Failed(format!("bad capability metadata: {e}")))?;
        let _span = ohpc_telemetry::trace_span_with(
            "cap_unprocess",
            &[("cap", cap.name()), ("dir", dir.as_label())],
        );
        let t0 = clock.now_ns();
        let result = cap.unprocess(dir, call, &meta, body);
        registry
            .histogram("orb_cap_unprocess_ns", &[("cap", cap.name()), ("dir", dir.as_label())])
            .observe(clock.now_ns().saturating_sub(t0));
        body = result?;
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy capability: XORs every byte with a constant and records a tag.
    struct XorCap {
        key: u8,
        name: String,
    }

    impl Capability for XorCap {
        fn name(&self) -> &str {
            &self.name
        }
        fn process(
            &self,
            _dir: Direction,
            _call: &CallInfo,
            meta: &mut CapMeta,
            body: Bytes,
        ) -> Result<Bytes, CapError> {
            meta.set("k", vec![self.key]);
            Ok(body.iter().map(|b| b ^ self.key).collect::<Vec<_>>().into())
        }
        fn unprocess(
            &self,
            _dir: Direction,
            _call: &CallInfo,
            meta: &CapMeta,
            body: Bytes,
        ) -> Result<Bytes, CapError> {
            let k = meta.require("k")?;
            if k[0] != self.key {
                return Err(CapError::Failed("key mismatch".into()));
            }
            Ok(body.iter().map(|b| b ^ self.key).collect::<Vec<_>>().into())
        }
    }

    fn xor(name: &str, key: u8) -> Arc<dyn Capability> {
        Arc::new(XorCap { key, name: name.into() })
    }

    #[test]
    fn meta_roundtrip() {
        let mut m = CapMeta::new();
        m.set("nonce", vec![1, 2, 3]);
        m.set("mac", vec![9; 32]);
        let back = CapMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.get("nonce").unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(back.get("mac").unwrap().len(), 32);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn meta_serialization_is_deterministic() {
        let mut a = CapMeta::new();
        a.set("zeta", vec![1]);
        a.set("alpha", vec![2]);
        let mut b = CapMeta::new();
        b.set("alpha", vec![2]);
        b.set("zeta", vec![1]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    fn call() -> CallInfo {
        CallInfo {
            object: crate::ids::ObjectId(1),
            method: 2,
            request_id: crate::ids::RequestId(3),
        }
    }

    #[test]
    fn chain_roundtrip_two_caps() {
        let caps = vec![xor("a", 0x55), xor("b", 0xAA)];
        let body = Bytes::from_static(b"the payload");
        let (cipher, metas) =
            process_chain(&caps, Direction::Request, &call(), body.clone()).unwrap();
        assert_ne!(cipher, body);
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].0, "a");
        let back = unprocess_chain(&caps, Direction::Request, &call(), &metas, cipher).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn chain_length_mismatch_detected() {
        let caps = vec![xor("a", 1)];
        let err =
            unprocess_chain(&caps, Direction::Request, &call(), &[], Bytes::new()).unwrap_err();
        assert!(matches!(err, CapError::Failed(_)));
    }

    #[test]
    fn chain_name_mismatch_detected() {
        let caps = vec![xor("a", 1)];
        let metas = vec![("b".to_string(), CapMeta::new().to_bytes())];
        let err = unprocess_chain(&caps, Direction::Request, &call(), &metas, Bytes::new())
            .unwrap_err();
        assert!(matches!(err, CapError::Failed(_)));
    }

    #[test]
    fn call_info_bytes_are_canonical() {
        let a = call().to_bytes();
        let b = call().to_bytes();
        assert_eq!(a, b);
        let mut other = call();
        other.method = 9;
        assert_ne!(a, other.to_bytes());
    }

    #[test]
    fn registry_builds_known_rejects_unknown() {
        let reg = CapabilityRegistry::new();
        reg.register("xor", |spec| {
            let key = spec.config.first().copied().unwrap_or(0);
            Ok(xor("xor", key))
        });
        assert!(reg.knows("xor"));
        assert!(!reg.knows("nope"));
        let cap = reg.build(&CapabilitySpec::with_config("xor", vec![7u8])).unwrap();
        assert_eq!(cap.name(), "xor");
        let err = reg.build(&CapabilitySpec::new("nope")).unwrap_err();
        assert_eq!(err, CapError::Unknown("nope".into()));
    }

    #[test]
    fn build_chain_fails_atomically() {
        let reg = CapabilityRegistry::new();
        reg.register("xor", |_| Ok(xor("xor", 1)));
        let specs = vec![CapabilitySpec::new("xor"), CapabilitySpec::new("missing")];
        assert!(reg.build_chain(&specs).is_err());
    }

    #[test]
    fn spec_xdr_roundtrip() {
        let spec = CapabilitySpec::with_config("encrypt", vec![1u8, 2, 3]);
        let buf = ohpc_xdr::encode_to_vec(&spec);
        let back: CapabilitySpec = ohpc_xdr::decode_from_slice(&buf).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn default_applicability_is_always() {
        let cap = xor("x", 1);
        let a = Location::new(0, 0);
        let b = Location::new(5, 9);
        assert!(cap.applicable(&a, &b));
    }
}
