//! Object References: identity + preference-ordered protocol table.
//!
//! An OR is plain data — it travels in registry lookups, in `Moved` replies,
//! and between client processes (the paper's "capabilities can be exchanged
//! between processes" is literally ORs with glue entries being XDR-encoded
//! and handed around).

use crate::capability::CapabilitySpec;
use crate::ids::{ObjectId, ProtocolId};
use ohpc_netsim::{LanId, Location, MachineId, SiteId};
use ohpc_xdr::{XdrDecode, XdrEncode, XdrError, XdrReader, XdrWriter};

/// Protocol-specific data for one table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoData {
    /// A dialable address, stringified (`tcp://…`, `mem://…`, `sim://M2:7`).
    Endpoint(String),
    /// Glue pseudo-protocol: a capability chain wrapped around an inner entry.
    Glue {
        /// Identifies the matching server-side chain instance.
        glue_id: u64,
        /// The chain, in processing order.
        caps: Vec<CapabilitySpec>,
        /// The real protocol that moves the bytes.
        inner: Box<ProtoEntry>,
    },
}

impl XdrEncode for ProtoData {
    fn encode(&self, w: &mut XdrWriter) {
        match self {
            ProtoData::Endpoint(ep) => {
                w.put_u32(0);
                w.put_string(ep);
            }
            ProtoData::Glue { glue_id, caps, inner } => {
                w.put_u32(1);
                w.put_u64(*glue_id);
                w.put_array_len(caps.len());
                for c in caps {
                    c.encode(w);
                }
                inner.encode(w);
            }
        }
    }
}

impl XdrDecode for ProtoData {
    // ohpc-analyze: allow(telemetry-coverage) — pure wire decoder; malformed
    // frames are counted once at the framing boundary (`from_frame`).
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        match r.get_u32()? {
            0 => Ok(ProtoData::Endpoint(r.get_string()?)),
            1 => {
                let glue_id = r.get_u64()?;
                let n = r.get_array_len()?;
                if n > 64 {
                    return Err(XdrError::custom("capability chain too long"));
                }
                let mut caps = Vec::with_capacity(n);
                for _ in 0..n {
                    caps.push(CapabilitySpec::decode(r)?);
                }
                let inner = Box::new(ProtoEntry::decode(r)?);
                Ok(ProtoData::Glue { glue_id, caps, inner })
            }
            t => Err(XdrError::InvalidDiscriminant(t)),
        }
    }
}

/// One row of an OR's protocol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoEntry {
    /// Which protocol this row names.
    pub id: ProtocolId,
    /// Its proto-data.
    pub data: ProtoData,
}

impl ProtoEntry {
    /// Convenience: a plain endpoint entry.
    pub fn endpoint(id: ProtocolId, ep: impl Into<String>) -> Self {
        Self { id, data: ProtoData::Endpoint(ep.into()) }
    }

    /// Convenience: a glue entry wrapping `inner`.
    pub fn glue(glue_id: u64, caps: Vec<CapabilitySpec>, inner: ProtoEntry) -> Self {
        Self {
            id: ProtocolId::GLUE,
            data: ProtoData::Glue { glue_id, caps, inner: Box::new(inner) },
        }
    }

    /// The dialable endpoint string, digging through glue wrapping.
    pub fn terminal_endpoint(&self) -> &str {
        match &self.data {
            ProtoData::Endpoint(ep) => ep,
            ProtoData::Glue { inner, .. } => inner.terminal_endpoint(),
        }
    }

    /// The protocol that actually moves bytes for this entry, digging
    /// through glue wrapping — the identity endpoint health is tracked
    /// under, so a glue entry and a plain entry over the same wire share
    /// one circuit breaker.
    pub fn terminal_protocol(&self) -> ProtocolId {
        match &self.data {
            ProtoData::Endpoint(_) => self.id,
            ProtoData::Glue { inner, .. } => inner.terminal_protocol(),
        }
    }

    /// Depth of glue nesting (0 for a plain entry).
    pub fn glue_depth(&self) -> usize {
        match &self.data {
            ProtoData::Endpoint(_) => 0,
            ProtoData::Glue { inner, .. } => 1 + inner.glue_depth(),
        }
    }
}

impl XdrEncode for ProtoEntry {
    fn encode(&self, w: &mut XdrWriter) {
        self.id.encode(w);
        self.data.encode(w);
    }
}

impl XdrDecode for ProtoEntry {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(Self { id: ProtocolId::decode(r)?, data: ProtoData::decode(r)? })
    }
}

/// An Object Reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectReference {
    /// The object's global identity.
    pub object: ObjectId,
    /// Interface type name (matches the skeleton's `type_name`).
    pub type_name: String,
    /// Where the object currently lives — inputs to applicability checks.
    pub location: Location,
    /// Preference-ordered protocol table.
    pub protocols: Vec<ProtoEntry>,
}

impl ObjectReference {
    /// Serializes for hand-off (registry storage, message payloads).
    pub fn to_bytes(&self) -> Vec<u8> {
        ohpc_xdr::encode_to_vec(self)
    }

    /// Deserializes an OR received from elsewhere.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, XdrError> {
        ohpc_xdr::decode_from_slice(buf)
    }

    /// Returns a copy whose protocol table keeps only entries satisfying
    /// `keep` — the paper's "different GPs to a single server object may
    /// contain ORs with different protocol tables": a server can hand a
    /// restricted OR to an untrusted client.
    pub fn restricted(&self, keep: impl Fn(&ProtoEntry) -> bool) -> Self {
        Self {
            object: self.object,
            type_name: self.type_name.clone(),
            location: self.location,
            protocols: self.protocols.iter().filter(|e| keep(e)).cloned().collect(),
        }
    }

    /// Protocol ids offered, in preference order.
    pub fn offered(&self) -> Vec<ProtocolId> {
        // ohpc-analyze: allow(shared-state) — ObjectReference is a value type: the
        // shared instance lives inside GlobalPointer.or, and every path here goes
        // through that RwLock's guard (or a uniquely-owned clone); the analyzer's
        // per-crate field matching cannot see instance identity or guards passed
        // as `&self` through selection.rs.
        self.protocols.iter().map(|e| e.id).collect()
    }
}

impl XdrEncode for ObjectReference {
    fn encode(&self, w: &mut XdrWriter) {
        self.object.encode(w);
        w.put_string(&self.type_name);
        w.put_u32(self.location.machine.0);
        w.put_u32(self.location.lan.0);
        w.put_u32(self.location.site.0);
        w.put_array_len(self.protocols.len());
        for p in &self.protocols {
            p.encode(w);
        }
    }
}

impl XdrDecode for ObjectReference {
    // ohpc-analyze: allow(telemetry-coverage) — pure wire decoder; malformed
    // frames are counted once at the framing boundary (`from_frame`).
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let object = ObjectId::decode(r)?;
        let type_name = r.get_string()?;
        let machine = MachineId(r.get_u32()?);
        let lan = LanId(r.get_u32()?);
        let site = SiteId(r.get_u32()?);
        let n = r.get_array_len()?;
        if n > 64 {
            return Err(XdrError::custom("protocol table too long"));
        }
        let mut protocols = Vec::with_capacity(n);
        for _ in 0..n {
            protocols.push(ProtoEntry::decode(r)?);
        }
        Ok(Self { object, type_name, location: Location { machine, lan, site }, protocols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn spec(name: &str) -> CapabilitySpec {
        CapabilitySpec { name: name.into(), config: Bytes::new() }
    }

    fn sample() -> ObjectReference {
        ObjectReference {
            object: ObjectId(0xAB),
            type_name: "Weather".into(),
            location: Location::new(3, 1),
            protocols: vec![
                ProtoEntry::glue(
                    7,
                    vec![spec("timeout"), spec("encrypt")],
                    ProtoEntry::endpoint(ProtocolId::TCP, "tcp://10.0.0.1:99"),
                ),
                ProtoEntry::endpoint(ProtocolId::SHM, "mem://4"),
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://10.0.0.1:98"),
            ],
        }
    }

    #[test]
    fn or_roundtrips() {
        let or = sample();
        let back = ObjectReference::from_bytes(&or.to_bytes()).unwrap();
        assert_eq!(back, or);
    }

    #[test]
    fn nested_glue_roundtrips() {
        let inner = ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1");
        let mid = ProtoEntry::glue(1, vec![spec("compress")], inner);
        let outer = ProtoEntry::glue(2, vec![spec("encrypt")], mid);
        assert_eq!(outer.glue_depth(), 2);
        assert_eq!(outer.terminal_endpoint(), "tcp://h:1");
        let buf = ohpc_xdr::encode_to_vec(&outer);
        let back: ProtoEntry = ohpc_xdr::decode_from_slice(&buf).unwrap();
        assert_eq!(back, outer);
    }

    #[test]
    fn restriction_filters_table() {
        let or = sample();
        let restricted = or.restricted(|e| e.id != ProtocolId::SHM);
        assert_eq!(restricted.offered(), vec![ProtocolId::GLUE, ProtocolId::NEXUS_TCP]);
        // original untouched
        assert_eq!(or.protocols.len(), 3);
        assert_eq!(restricted.object, or.object);
    }

    #[test]
    fn offered_preserves_preference_order() {
        assert_eq!(
            sample().offered(),
            vec![ProtocolId::GLUE, ProtocolId::SHM, ProtocolId::NEXUS_TCP]
        );
    }

    #[test]
    fn oversized_chain_rejected() {
        let mut w = XdrWriter::new();
        w.put_u32(1); // glue tag
        w.put_u64(1);
        w.put_array_len(1000); // absurd chain
        let buf = w.finish();
        assert!(ohpc_xdr::decode_from_slice::<ProtoData>(&buf).is_err());
    }
}
