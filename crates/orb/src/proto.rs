//! Protocol objects and the proto-pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ohpc_netsim::{LinkClass, Location};

use crate::error::OrbError;
use crate::ids::ProtocolId;
use crate::message::{ReplyMessage, RequestMessage};
use crate::objref::ProtoEntry;

/// Where a protocol is willing to operate, relative to the client/server
/// locations. This is the paper's "applicability attribute": shared memory
/// only on the same machine, an authenticating glue only across LANs, …
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplicabilityRule {
    /// Usable anywhere.
    Always,
    /// Only when client and server share a machine.
    SameMachineOnly,
    /// Only when client and server share a LAN (including same machine).
    SameLanOnly,
    /// Only when client and server are on *different* machines.
    RemoteOnly,
    /// Only when client and server are on different LANs (same or different
    /// site).
    CrossLanOnly,
    /// Only when client and server are on different sites.
    CrossSiteOnly,
}

impl ApplicabilityRule {
    /// Evaluates the rule for a (client, server) pair.
    pub fn allows(&self, client: &Location, server: &Location) -> bool {
        let class = client.class_to(server);
        match self {
            ApplicabilityRule::Always => true,
            ApplicabilityRule::SameMachineOnly => class == LinkClass::SameMachine,
            ApplicabilityRule::SameLanOnly => {
                matches!(class, LinkClass::SameMachine | LinkClass::SameLan)
            }
            ApplicabilityRule::RemoteOnly => class != LinkClass::SameMachine,
            ApplicabilityRule::CrossLanOnly => {
                matches!(class, LinkClass::CrossLan | LinkClass::CrossSite)
            }
            ApplicabilityRule::CrossSiteOnly => class == LinkClass::CrossSite,
        }
    }
}

/// A protocol object: encapsulates one communication protocol on the client
/// side. The ORB invokes the selected proto-object with a fully marshaled
/// request; everything below this line is the protocol's business.
///
/// Both methods receive the caller's [`ProtoPool`] because the glue
/// pseudo-protocol delegates to whatever *real* protocol its entry wraps —
/// resolved against the same pool, exactly like top-level selection.
pub trait ProtoObject: Send + Sync {
    /// The protocol this object implements.
    fn protocol_id(&self) -> ProtocolId;

    /// Whether this proto-object may serve a request from `client` to the
    /// server described by `entry`/`server`.
    fn applicable(
        &self,
        pool: &ProtoPool,
        client: &Location,
        server: &Location,
        entry: &ProtoEntry,
    ) -> bool;

    /// Performs one remote request using `entry`'s proto-data.
    fn invoke(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError>;

    /// Like [`invoke`](Self::invoke), carrying the caller's remaining
    /// deadline budget (`None` = no deadline). Transport-backed protocols
    /// arm a receive timeout from it so a hung (not crashed) server cannot
    /// block past the [`ohpc_resilience::RetryPolicy`] deadline; the glue
    /// pseudo-protocol forwards it to its inner protocol. The default
    /// ignores the budget — correct for protocols without a blocking wait.
    fn invoke_with_deadline(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
        remaining_ns: Option<u64>,
    ) -> Result<ReplyMessage, OrbError> {
        let _ = remaining_ns;
        self.invoke(pool, entry, req)
    }

    /// Fires a one-way request: no reply is read. The default performs a
    /// full round trip and discards the reply; transports that can genuinely
    /// fire-and-forget override it.
    fn invoke_oneway(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<(), OrbError> {
        self.invoke(pool, entry, req).map(|_| ())
    }

    /// Human-readable description for experiment logs (e.g.
    /// `glue[timeout+security]->tcp`).
    fn describe(&self, entry: &ProtoEntry) -> String {
        let _ = entry;
        self.protocol_id().to_string()
    }
}

/// Preference-ordered repository of proto-objects available to a client.
///
/// The pool is itself part of the *local* policy: an administrator who does
/// not install a shared-memory proto-object has disabled that protocol no
/// matter what servers offer (the paper's "user control over the protocol
/// selection process").
#[derive(Default)]
pub struct ProtoPool {
    protos: Vec<Arc<dyn ProtoObject>>,
    /// Bumped on every membership change; the ROADMAP's selection cache
    /// revalidates against it (see `GlobalPointer::or_epoch`). Enforced by
    /// ohpc-analyze's `epoch-bump` rule.
    epoch: AtomicU64,
}

impl Clone for ProtoPool {
    fn clone(&self) -> Self {
        Self {
            protos: self.protos.clone(),
            // A clone is a new pool identity; its cache epoch restarts.
            epoch: AtomicU64::new(0),
        }
    }
}

impl ProtoPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a proto-object (lowest preference so far).
    pub fn push(&mut self, proto: Arc<dyn ProtoObject>) -> &mut Self {
        self.protos.push(proto);
        self.epoch.fetch_add(1, Ordering::Release);
        self
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, proto: Arc<dyn ProtoObject>) -> Self {
        self.protos.push(proto);
        self.epoch.fetch_add(1, Ordering::Release);
        self
    }

    /// Membership epoch: changes whenever the pool's contents do.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// First pool entry implementing `id` (pool preference order).
    pub fn find(&self, id: ProtocolId) -> Option<Arc<dyn ProtoObject>> {
        self.protos.iter().find(|p| p.protocol_id() == id).cloned()
    }

    /// All protocol ids present, in preference order (with duplicates).
    pub fn ids(&self) -> Vec<ProtocolId> {
        self.protos.iter().map(|p| p.protocol_id()).collect()
    }

    /// Number of proto-objects installed.
    pub fn len(&self) -> usize {
        self.protos.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.protos.is_empty()
    }

    /// Removes every proto-object implementing `id`, returning how many were
    /// removed. Dynamic pool editing is one of the paper's adaptivity hooks.
    pub fn remove(&mut self, id: ProtocolId) -> usize {
        let before = self.protos.len();
        self.protos.retain(|p| p.protocol_id() != id);
        self.epoch.fetch_add(1, Ordering::Release);
        before - self.protos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ohpc_netsim::Location;

    struct FakeProto(ProtocolId);
    impl ProtoObject for FakeProto {
        fn protocol_id(&self) -> ProtocolId {
            self.0
        }
        fn applicable(
            &self,
            _pool: &ProtoPool,
            _c: &Location,
            _s: &Location,
            _e: &ProtoEntry,
        ) -> bool {
            true
        }
        fn invoke(
            &self,
            _pool: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            Ok(ReplyMessage::ok(req.request_id, Bytes::new()))
        }
    }

    #[test]
    fn applicability_rules() {
        let same_machine = (Location::new(1, 1), Location::new(1, 1));
        let same_lan = (Location::new(1, 1), Location::new(2, 1));
        let cross_lan = (Location::new(1, 1), Location::new(3, 2));
        let cross_site = (Location::new(1, 1), Location::with_site(4, 1, 2));

        for (rule, expect) in [
            (ApplicabilityRule::Always, [true, true, true, true]),
            (ApplicabilityRule::SameMachineOnly, [true, false, false, false]),
            (ApplicabilityRule::SameLanOnly, [true, true, false, false]),
            (ApplicabilityRule::RemoteOnly, [false, true, true, true]),
            (ApplicabilityRule::CrossLanOnly, [false, false, true, true]),
            (ApplicabilityRule::CrossSiteOnly, [false, false, false, true]),
        ] {
            assert_eq!(rule.allows(&same_machine.0, &same_machine.1), expect[0], "{rule:?} same machine");
            assert_eq!(rule.allows(&same_lan.0, &same_lan.1), expect[1], "{rule:?} same lan");
            assert_eq!(rule.allows(&cross_lan.0, &cross_lan.1), expect[2], "{rule:?} cross lan");
            assert_eq!(rule.allows(&cross_site.0, &cross_site.1), expect[3], "{rule:?} cross site");
        }
    }

    #[test]
    fn pool_find_respects_order() {
        let pool = ProtoPool::new()
            .with(Arc::new(FakeProto(ProtocolId::TCP)))
            .with(Arc::new(FakeProto(ProtocolId::SHM)))
            .with(Arc::new(FakeProto(ProtocolId::TCP)));
        assert_eq!(pool.len(), 3);
        assert!(pool.find(ProtocolId::SHM).is_some());
        assert!(pool.find(ProtocolId::NEXUS_TCP).is_none());
        assert_eq!(pool.ids(), vec![ProtocolId::TCP, ProtocolId::SHM, ProtocolId::TCP]);
    }

    #[test]
    fn pool_remove() {
        let mut pool = ProtoPool::new()
            .with(Arc::new(FakeProto(ProtocolId::TCP)))
            .with(Arc::new(FakeProto(ProtocolId::SHM)))
            .with(Arc::new(FakeProto(ProtocolId::TCP)));
        assert_eq!(pool.remove(ProtocolId::TCP), 2);
        assert_eq!(pool.ids(), vec![ProtocolId::SHM]);
        assert_eq!(pool.remove(ProtocolId::TCP), 0);
    }
}
