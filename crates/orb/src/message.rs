//! Request/reply wire messages.
//!
//! A frame on the wire is one XDR-encoded [`RequestMessage`] or
//! [`ReplyMessage`]. The optional glue section carries the capability chain
//! id and each capability's per-direction metadata (nonce, MAC, auth token,
//! request counter, …) so the receiving glue class can run the inverse
//! transforms.

use bytes::Bytes;

use crate::ids::{ObjectId, RequestId};
use crate::objref::ObjectReference;
use ohpc_telemetry::TraceContext;
use ohpc_xdr::{XdrDecode, XdrEncode, XdrError, XdrReader, XdrWriter};

/// Version word of the trace-context trailing extension on request frames.
///
/// The extension rides *after* the last request field as
/// `XdrWriter::put_trailing_extension(version, payload)`: a frame without
/// trace context is byte-identical to a pre-tracing frame, an old decoder
/// never reads past the body, and a new decoder treats end-of-input as "no
/// context" and an unknown version as an opaque skip.
pub const TRACE_EXT_VERSION: u32 = 1;

fn encode_trace(t: &TraceContext) -> Bytes {
    let mut w = XdrWriter::with_capacity(48 + t.baggage_bytes());
    w.put_u64((t.trace_id >> 64) as u64);
    w.put_u64(t.trace_id as u64);
    w.put_u64(t.span_id);
    w.put_u64(t.parent_span_id);
    w.put_array_len(t.baggage.len());
    for (k, v) in &t.baggage {
        w.put_string(k);
        w.put_string(v);
    }
    w.finish()
}

fn decode_trace(payload: &[u8]) -> Result<TraceContext, XdrError> {
    let mut r = XdrReader::new(payload);
    let hi = r.get_u64()?;
    let lo = r.get_u64()?;
    let span_id = r.get_u64()?;
    let parent_span_id = r.get_u64()?;
    let n = r.get_array_len()?;
    let mut baggage = Vec::with_capacity(n.min(32));
    for _ in 0..n {
        baggage.push((r.get_string()?, r.get_string()?));
    }
    Ok(TraceContext {
        trace_id: (u128::from(hi) << 64) | u128::from(lo),
        span_id,
        parent_span_id,
        baggage,
    })
}

/// One capability's wire metadata for one direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapWireMeta {
    /// Capability name (matches [`crate::capability::Capability::name`]).
    pub name: String,
    /// Opaque metadata produced by `process` on the sending side.
    pub meta: Bytes,
}

impl XdrEncode for CapWireMeta {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_string(&self.name);
        w.put_opaque(&self.meta);
    }
}

impl XdrDecode for CapWireMeta {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            name: r.get_string()?,
            meta: Bytes::copy_from_slice(r.get_opaque()?),
        })
    }
}

/// Glue section of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlueWire {
    /// Server-side chain to apply the inverse transforms.
    pub glue_id: u64,
    /// Per-capability metadata, in chain order.
    pub caps: Vec<CapWireMeta>,
}

impl XdrEncode for GlueWire {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_u64(self.glue_id);
        w.put_array_len(self.caps.len());
        for c in &self.caps {
            c.encode(w);
        }
    }
}

impl XdrDecode for GlueWire {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let glue_id = r.get_u64()?;
        let n = r.get_array_len()?;
        let mut caps = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            caps.push(CapWireMeta::decode(r)?);
        }
        Ok(Self { glue_id, caps })
    }
}

/// A remote method invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMessage {
    /// Per-connection sequence number; echoed in the reply.
    pub request_id: RequestId,
    /// Target object.
    pub object: ObjectId,
    /// Method slot within the object's interface.
    pub method: u32,
    /// Fire-and-forget: the server dispatches but sends no reply, and the
    /// client cannot observe the outcome (at-most-once semantics; a
    /// tombstoned object silently drops one-way requests).
    pub oneway: bool,
    /// Present iff the request travelled through a glue protocol.
    pub glue: Option<GlueWire>,
    /// XDR-encoded arguments (possibly transformed by capabilities).
    pub body: Bytes,
    /// Causal trace context, carried as a versioned trailing extension so
    /// pre-tracing frames still parse (see [`TRACE_EXT_VERSION`]).
    pub trace: Option<TraceContext>,
}

/// Wire name of the deadline capability. The cap itself lives in
/// `ohpc-caps` (which depends on this crate); the name is defined here so
/// the admission gate can peek deadline stamps without building the chain.
pub const DEADLINE_CAP_NAME: &str = "deadline";

/// Capability-metadata key carrying the absolute expiry (clock ns) stamped
/// by the client-side deadline capability.
pub const DEADLINE_META_KEY: &str = "deadline.expires_ns";

impl RequestMessage {
    /// Absolute expiry (clock nanoseconds) stamped by a deadline capability
    /// in this request's glue section, if present.
    ///
    /// Decoded *without* building the server-side chain: capability
    /// metadata travels in the clear (only bodies are transformed), so the
    /// admission gate can shed an already-expired request in microseconds,
    /// before it ever queues. Malformed stamps read as "no deadline" here —
    /// the chain's own `unprocess` reports them properly at dispatch.
    pub fn deadline_expires_ns(&self) -> Option<u64> {
        let wire = self.glue.as_ref()?;
        let meta_bytes = &wire.caps.iter().find(|c| c.name == DEADLINE_CAP_NAME)?.meta;
        let meta = crate::capability::CapMeta::from_bytes(meta_bytes).ok()?;
        let raw = meta.get(DEADLINE_META_KEY)?;
        XdrReader::new(raw).get_u64().ok()
    }

    /// Encodes to a transport frame.
    pub fn to_frame(&self) -> Bytes {
        let mut w = XdrWriter::with_capacity(self.body.len() + 64);
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes from a transport frame.
    pub fn from_frame(frame: &[u8]) -> Result<Self, XdrError> {
        ohpc_xdr::decode_from_slice(frame).inspect_err(|_| {
            ohpc_telemetry::inc("orb_malformed_frames_total", &[("kind", "request")]);
        })
    }
}

impl XdrEncode for RequestMessage {
    fn encode(&self, w: &mut XdrWriter) {
        self.request_id.encode(w);
        self.object.encode(w);
        w.put_u32(self.method);
        w.put_bool(self.oneway);
        self.glue.encode(w);
        w.put_opaque(&self.body);
        if let Some(t) = &self.trace {
            w.put_trailing_extension(TRACE_EXT_VERSION, &encode_trace(t));
        }
    }
}

impl XdrDecode for RequestMessage {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let request_id = RequestId::decode(r)?;
        let object = ObjectId::decode(r)?;
        let method = r.get_u32()?;
        let oneway = r.get_bool()?;
        let glue = Option::<GlueWire>::decode(r)?;
        let body = Bytes::copy_from_slice(r.get_opaque()?);
        let trace = match r.get_trailing_extension()? {
            // Legacy frame: no extension bytes at all.
            None => None,
            // A known version decodes strictly; a corrupt payload is a
            // malformed frame, not a silently traceless one.
            Some((TRACE_EXT_VERSION, payload)) => Some(decode_trace(payload)?),
            // A future version is skipped whole (the payload is opaque).
            Some((_, _)) => None,
        };
        Ok(Self { request_id, object, method, oneway, glue, body, trace })
    }
}

/// Outcome of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyStatus {
    /// Success; the body carries the encoded results.
    Ok,
    /// The method raised an application exception.
    Exception(String),
    /// The object migrated; here is its new OR (CORBA-style location
    /// forwarding). The client rebinds and retries.
    Moved(Box<ObjectReference>),
    /// Unknown object id.
    NoSuchObject,
    /// Unknown method slot.
    NoSuchMethod(u32),
    /// A capability on the server side refused the request.
    CapabilityDenied(String),
    /// Server could not find the glue chain named by the request.
    UnknownGlue(u64),
    /// Admission control shed the request: the server's in-flight bound was
    /// hit (or its dispatch breaker is open). The request was **not**
    /// executed, so clients classify this retryable-with-backoff.
    Overloaded(String),
    /// The request's deadline stamp had already expired when it reached the
    /// dispatch boundary; the server shed it unexecuted. Non-retryable —
    /// the caller's own deadline machinery has moved on.
    DeadlineExpired(String),
}

impl ReplyStatus {
    fn tag(&self) -> u32 {
        match self {
            ReplyStatus::Ok => 0,
            ReplyStatus::Exception(_) => 1,
            ReplyStatus::Moved(_) => 2,
            ReplyStatus::NoSuchObject => 3,
            ReplyStatus::NoSuchMethod(_) => 4,
            ReplyStatus::CapabilityDenied(_) => 5,
            ReplyStatus::UnknownGlue(_) => 6,
            ReplyStatus::Overloaded(_) => 7,
            ReplyStatus::DeadlineExpired(_) => 8,
        }
    }

    /// The wire discriminant this status encodes as.
    ///
    /// Public so tests (and operators debugging captures) can audit the
    /// tag assignment without round-tripping through the codec. Tags are
    /// wire protocol: they never change meaning, and new variants take
    /// fresh values.
    pub fn wire_tag(&self) -> u32 {
        self.tag()
    }

    /// Maps a failure status to the client-side [`OrbError`] it surfaces as.
    ///
    /// This is the single source of truth for status → error conversion, so
    /// the invoke loop and tests cannot drift apart. `Ok` and `Moved` are
    /// not errors — the invoke loop consumes them before calling this — so
    /// they map to [`OrbError::Protocol`] rather than panicking on a path
    /// that handles hostile input.
    pub fn into_orb_error(self, object: ObjectId) -> crate::error::OrbError {
        use crate::error::OrbError;
        match self {
            ReplyStatus::Ok => OrbError::Protocol("Ok reply status reached error conversion".into()),
            ReplyStatus::Moved(_) => {
                OrbError::Protocol("Moved reply status reached error conversion".into())
            }
            ReplyStatus::Exception(m) => OrbError::RemoteException(m),
            ReplyStatus::NoSuchObject => OrbError::NoSuchObject(object),
            ReplyStatus::NoSuchMethod(m) => OrbError::NoSuchMethod(m),
            ReplyStatus::CapabilityDenied(m) => {
                OrbError::Capability(crate::capability::CapError::Denied(m))
            }
            ReplyStatus::UnknownGlue(id) => OrbError::UnknownGlue(id),
            ReplyStatus::Overloaded(m) => OrbError::Overloaded(m),
            ReplyStatus::DeadlineExpired(m) => OrbError::DeadlineExpired(m),
        }
    }
}

impl XdrEncode for ReplyStatus {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_u32(self.tag());
        match self {
            ReplyStatus::Ok | ReplyStatus::NoSuchObject => {}
            ReplyStatus::Exception(m)
            | ReplyStatus::CapabilityDenied(m)
            | ReplyStatus::Overloaded(m)
            | ReplyStatus::DeadlineExpired(m) => w.put_string(m),
            ReplyStatus::Moved(or) => or.encode(w),
            ReplyStatus::NoSuchMethod(m) => w.put_u32(*m),
            ReplyStatus::UnknownGlue(id) => w.put_u64(*id),
        }
    }
}

impl XdrDecode for ReplyStatus {
    // ohpc-analyze: allow(telemetry-coverage) — pure wire decoder; malformed
    // frames are counted once at the framing boundary (`from_frame`).
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        match r.get_u32()? {
            0 => Ok(ReplyStatus::Ok),
            1 => Ok(ReplyStatus::Exception(r.get_string()?)),
            2 => Ok(ReplyStatus::Moved(Box::new(ObjectReference::decode(r)?))),
            3 => Ok(ReplyStatus::NoSuchObject),
            4 => Ok(ReplyStatus::NoSuchMethod(r.get_u32()?)),
            5 => Ok(ReplyStatus::CapabilityDenied(r.get_string()?)),
            6 => Ok(ReplyStatus::UnknownGlue(r.get_u64()?)),
            7 => Ok(ReplyStatus::Overloaded(r.get_string()?)),
            8 => Ok(ReplyStatus::DeadlineExpired(r.get_string()?)),
            t => Err(XdrError::InvalidDiscriminant(t)),
        }
    }
}

/// Response to a [`RequestMessage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMessage {
    /// Echoes the request's sequence number.
    pub request_id: RequestId,
    /// Outcome.
    pub status: ReplyStatus,
    /// Reply-direction capability metadata, in chain order.
    pub glue: Option<GlueWire>,
    /// Encoded results (possibly transformed by capabilities); empty unless
    /// status is `Ok`.
    pub body: Bytes,
}

impl ReplyMessage {
    /// Success reply.
    pub fn ok(request_id: RequestId, body: Bytes) -> Self {
        Self { request_id, status: ReplyStatus::Ok, glue: None, body }
    }

    /// Non-Ok reply with empty body.
    pub fn status(request_id: RequestId, status: ReplyStatus) -> Self {
        Self { request_id, status, glue: None, body: Bytes::new() }
    }

    /// Encodes to a transport frame.
    pub fn to_frame(&self) -> Bytes {
        let mut w = XdrWriter::with_capacity(self.body.len() + 64);
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes from a transport frame.
    pub fn from_frame(frame: &[u8]) -> Result<Self, XdrError> {
        ohpc_xdr::decode_from_slice(frame).inspect_err(|_| {
            ohpc_telemetry::inc("orb_malformed_frames_total", &[("kind", "reply")]);
        })
    }
}

impl XdrEncode for ReplyMessage {
    fn encode(&self, w: &mut XdrWriter) {
        self.request_id.encode(w);
        self.status.encode(w);
        self.glue.encode(w);
        w.put_opaque(&self.body);
    }
}

impl XdrDecode for ReplyMessage {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            request_id: RequestId::decode(r)?,
            status: ReplyStatus::decode(r)?,
            glue: Option::<GlueWire>::decode(r)?,
            body: Bytes::copy_from_slice(r.get_opaque()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProtocolId;
    use crate::objref::{ObjectReference, ProtoData, ProtoEntry};
    use ohpc_netsim::Location;

    fn sample_or() -> ObjectReference {
        ObjectReference {
            object: ObjectId(77),
            type_name: "Echo".into(),
            location: Location::new(1, 2),
            protocols: vec![ProtoEntry {
                id: ProtocolId::TCP,
                data: ProtoData::Endpoint("tcp://127.0.0.1:1".into()),
            }],
        }
    }

    #[test]
    fn request_roundtrip_no_glue() {
        let req = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: None,
            body: Bytes::from_static(b"args"),
            trace: None,
        };
        let back = RequestMessage::from_frame(&req.to_frame()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrip_with_glue() {
        let req = RequestMessage {
            request_id: RequestId(1),
            object: ObjectId(2),
            method: 0,
            oneway: true,
            glue: Some(GlueWire {
                glue_id: 0xCAFE,
                caps: vec![
                    CapWireMeta { name: "encrypt".into(), meta: Bytes::from_static(&[1, 2, 3]) },
                    CapWireMeta { name: "timeout".into(), meta: Bytes::new() },
                ],
            }),
            body: Bytes::from_static(b"encrypted-bytes"),
            trace: None,
        };
        let back = RequestMessage::from_frame(&req.to_frame()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrip_with_trace_and_baggage() {
        let mut ctx = ohpc_telemetry::TraceContext::new_root();
        assert!(ctx.try_add_baggage("tenant", "blue"));
        assert!(ctx.try_add_baggage("shard", "7"));
        let req = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: None,
            body: Bytes::from_static(b"args"),
            trace: Some(ctx),
        };
        let back = RequestMessage::from_frame(&req.to_frame()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn traceless_frame_is_byte_identical_to_the_legacy_encoding() {
        // The trace rides as a trailing extension: when absent, the frame
        // must match what a pre-trace encoder produced, byte for byte.
        let req = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: None,
            body: Bytes::from_static(b"args"),
            trace: None,
        };
        let mut w = XdrWriter::new();
        RequestId(5).encode(&mut w);
        ObjectId(9).encode(&mut w);
        w.put_u32(3);
        w.put_bool(false);
        false.encode(&mut w); // glue: None discriminant
        w.put_opaque(b"args");
        assert_eq!(&req.to_frame()[..], &w.finish()[..]);
    }

    #[test]
    fn unknown_trace_extension_version_is_skipped() {
        let legacy = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: None,
            body: Bytes::from_static(b"args"),
            trace: None,
        };
        let mut frame = legacy.to_frame().to_vec();
        let mut w = XdrWriter::new();
        w.put_trailing_extension(TRACE_EXT_VERSION + 1, b"from-the-future");
        frame.extend_from_slice(&w.finish());
        let back = RequestMessage::from_frame(&frame).unwrap();
        assert_eq!(back, legacy, "unknown extension decodes as no trace");
    }

    #[test]
    fn corrupt_trace_payload_is_a_malformed_frame() {
        let legacy = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: None,
            body: Bytes::new(),
            trace: None,
        };
        let mut frame = legacy.to_frame().to_vec();
        let mut w = XdrWriter::new();
        w.put_trailing_extension(TRACE_EXT_VERSION, &[0xFF; 3]);
        frame.extend_from_slice(&w.finish());
        assert!(RequestMessage::from_frame(&frame).is_err());
    }

    #[test]
    fn deadline_peek_reads_the_stamp_without_building_the_chain() {
        let mut meta = crate::capability::CapMeta::new();
        let mut w = XdrWriter::new();
        w.put_u64(123_456);
        meta.set(DEADLINE_META_KEY, w.finish());
        let mut req = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: Some(GlueWire {
                glue_id: 1,
                caps: vec![
                    CapWireMeta { name: "encrypt".into(), meta: Bytes::from_static(&[9]) },
                    CapWireMeta { name: DEADLINE_CAP_NAME.into(), meta: meta.to_bytes() },
                ],
            }),
            body: Bytes::new(),
            trace: None,
        };
        assert_eq!(req.deadline_expires_ns(), Some(123_456));

        // No glue, or a glue without a deadline cap: no stamp.
        req.glue = None;
        assert_eq!(req.deadline_expires_ns(), None);
        req.glue = Some(GlueWire {
            glue_id: 1,
            caps: vec![CapWireMeta { name: "encrypt".into(), meta: Bytes::new() }],
        });
        assert_eq!(req.deadline_expires_ns(), None);

        // A corrupt stamp peeks as "no deadline" (the chain reports it).
        req.glue = Some(GlueWire {
            glue_id: 1,
            caps: vec![CapWireMeta {
                name: DEADLINE_CAP_NAME.into(),
                meta: Bytes::from_static(&[0xFF; 2]),
            }],
        });
        assert_eq!(req.deadline_expires_ns(), None);
    }

    #[test]
    fn reply_status_roundtrips() {
        let statuses = vec![
            ReplyStatus::Ok,
            ReplyStatus::Exception("boom".into()),
            ReplyStatus::Moved(Box::new(sample_or())),
            ReplyStatus::NoSuchObject,
            ReplyStatus::NoSuchMethod(17),
            ReplyStatus::CapabilityDenied("budget exhausted".into()),
            ReplyStatus::UnknownGlue(0xBEEF),
            ReplyStatus::Overloaded("512 in flight (limit 512)".into()),
            ReplyStatus::DeadlineExpired("deadline of 50 ms exceeded before dispatch".into()),
        ];
        for status in statuses {
            let reply = ReplyMessage {
                request_id: RequestId(8),
                status: status.clone(),
                glue: None,
                body: Bytes::new(),
            };
            let back = ReplyMessage::from_frame(&reply.to_frame()).unwrap();
            assert_eq!(back.status, status);
        }
    }

    #[test]
    fn bad_status_tag_rejected() {
        let mut w = XdrWriter::new();
        RequestId(1).encode(&mut w);
        w.put_u32(99); // bad tag
        let buf = w.finish();
        assert!(ReplyMessage::from_frame(&buf).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let req = RequestMessage {
            request_id: RequestId(5),
            object: ObjectId(9),
            method: 3,
            oneway: false,
            glue: None,
            body: Bytes::from_static(b"some body bytes"),
            trace: None,
        };
        let frame = req.to_frame();
        assert!(RequestMessage::from_frame(&frame[..frame.len() - 4]).is_err());
    }
}
