//! ORB-level error type.

use crate::capability::CapError;
use crate::ids::{ObjectId, ProtocolId};
use ohpc_resilience::{classify, ErrorClass};
use ohpc_transport::TransportError;
use ohpc_xdr::XdrError;

/// Everything that can go wrong on the remote-invocation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrbError {
    /// No entry in the OR's protocol table matched the local pool and was
    /// applicable for the current locations.
    NoApplicableProtocol {
        /// Protocols the OR offered.
        offered: Vec<ProtocolId>,
    },
    /// Transport failure underneath the selected protocol, observed *before*
    /// the request frame was handed to the fabric: the server provably never
    /// saw the request, so retrying is always safe.
    Transport(TransportError),
    /// Transport failure *after* the request frame was sent but before a
    /// reply arrived: the server may or may not have executed the request.
    /// The retry policy only re-sends such requests when they are flagged
    /// idempotent.
    AmbiguousTransport(TransportError),
    /// The per-request deadline elapsed before an attempt succeeded. Carries
    /// how many attempts ran and the error that exhausted the budget.
    DeadlineExceeded {
        /// Attempts made before the deadline cut retries short.
        attempts: u32,
        /// The last attempt's failure.
        last: Box<OrbError>,
    },
    /// Marshaling failure.
    Xdr(XdrError),
    /// A capability refused or failed to transform the request.
    Capability(CapError),
    /// The server object raised an application exception.
    RemoteException(String),
    /// Target object does not exist at the server.
    NoSuchObject(ObjectId),
    /// Target object has no such method.
    NoSuchMethod(u32),
    /// The object kept moving: rebind retries exhausted.
    TooManyForwards(u32),
    /// Malformed frame or protocol violation.
    Protocol(String),
    /// Server-side glue chain referenced by the request is unknown.
    UnknownGlue(u64),
    /// The server shed the request at admission (in-flight bound hit or
    /// dispatch breaker open). The request was never executed, so a retry
    /// is always safe; the backoff gives the server room to drain.
    Overloaded(String),
    /// The server shed the request because its deadline stamp had already
    /// expired on arrival. Permanent: by the time this reply lands, the
    /// budget is even further gone, and the client's own deadline
    /// accounting is the authority on what to do next.
    DeadlineExpired(String),
}

impl std::fmt::Display for OrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrbError::NoApplicableProtocol { offered } => {
                write!(f, "no applicable protocol among {offered:?}")
            }
            OrbError::Transport(e) => write!(f, "transport: {e}"),
            OrbError::AmbiguousTransport(e) => {
                write!(f, "transport (request possibly delivered): {e}")
            }
            OrbError::DeadlineExceeded { attempts, last } => {
                write!(f, "deadline exceeded after {attempts} attempt(s); last error: {last}")
            }
            OrbError::Xdr(e) => write!(f, "marshal: {e}"),
            OrbError::Capability(e) => write!(f, "capability: {e}"),
            OrbError::RemoteException(m) => write!(f, "remote exception: {m}"),
            OrbError::NoSuchObject(id) => write!(f, "no such object {id}"),
            OrbError::NoSuchMethod(m) => write!(f, "no such method {m}"),
            OrbError::TooManyForwards(n) => write!(f, "object moved {n} times; giving up"),
            OrbError::Protocol(m) => write!(f, "protocol violation: {m}"),
            OrbError::UnknownGlue(id) => write!(f, "unknown glue chain {id}"),
            OrbError::Overloaded(m) => write!(f, "server overloaded (shed at admission): {m}"),
            OrbError::DeadlineExpired(m) => {
                write!(f, "server shed expired request: {m}")
            }
        }
    }
}

impl std::error::Error for OrbError {}

impl OrbError {
    /// How this error relates to the retry budget (see
    /// [`ohpc_resilience::ErrorClass`]).
    ///
    /// Transport failures classify by kind; ambiguous transport failures are
    /// at best [`ErrorClass::Ambiguous`] (idempotent-only retry). An
    /// admission-control shed is retryable — the server answered, proving
    /// the wire, and explicitly promised the request never ran. Everything
    /// else — application exceptions, capability denials, marshaling
    /// failures, selection failures, server-side deadline sheds — is
    /// permanent: retrying the same request cannot change the outcome.
    pub fn retry_class(&self) -> ErrorClass {
        match self {
            OrbError::Transport(e) => classify(e),
            OrbError::AmbiguousTransport(e) => match classify(e) {
                ErrorClass::Permanent => ErrorClass::Permanent,
                _ => ErrorClass::Ambiguous,
            },
            OrbError::Overloaded(_) => ErrorClass::Retryable,
            _ => ErrorClass::Permanent,
        }
    }

    /// Whether this error fed back into endpoint health (transport errors
    /// and timeouts do; application-level outcomes do not).
    pub fn is_transport(&self) -> bool {
        matches!(self, OrbError::Transport(_) | OrbError::AmbiguousTransport(_))
    }
}

impl From<TransportError> for OrbError {
    fn from(e: TransportError) -> Self {
        OrbError::Transport(e)
    }
}

impl From<XdrError> for OrbError {
    fn from(e: XdrError) -> Self {
        OrbError::Xdr(e)
    }
}

impl From<CapError> for OrbError {
    fn from(e: CapError) -> Self {
        OrbError::Capability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = OrbError::NoApplicableProtocol { offered: vec![ProtocolId::TCP] };
        assert!(e.to_string().contains("no applicable protocol"));
        assert!(OrbError::NoSuchMethod(4).to_string().contains("4"));
        assert!(OrbError::UnknownGlue(9).to_string().contains("9"));
    }

    #[test]
    fn retry_classes() {
        use ohpc_resilience::ErrorClass;
        assert_eq!(
            OrbError::Transport(TransportError::Closed).retry_class(),
            ErrorClass::Retryable
        );
        assert_eq!(
            OrbError::AmbiguousTransport(TransportError::Closed).retry_class(),
            ErrorClass::Ambiguous
        );
        assert_eq!(
            OrbError::AmbiguousTransport(TransportError::FrameTooLarge(1)).retry_class(),
            ErrorClass::Permanent
        );
        assert_eq!(OrbError::RemoteException("x".into()).retry_class(), ErrorClass::Permanent);
        assert_eq!(OrbError::NoSuchMethod(1).retry_class(), ErrorClass::Permanent);
        assert_eq!(
            OrbError::Overloaded("512 in flight".into()).retry_class(),
            ErrorClass::Retryable,
            "an admission shed never executed the request; retry-with-backoff is safe"
        );
        assert_eq!(
            OrbError::DeadlineExpired("50 ms gone".into()).retry_class(),
            ErrorClass::Permanent,
            "a deadline shed only gets staler on retry"
        );
        assert!(!OrbError::Overloaded(String::new()).is_transport());
        assert!(OrbError::AmbiguousTransport(TransportError::Closed).is_transport());
        assert!(!OrbError::NoSuchObject(ObjectId(1)).is_transport());
    }

    #[test]
    fn deadline_display_names_the_last_error() {
        let e = OrbError::DeadlineExceeded {
            attempts: 3,
            last: Box::new(OrbError::Transport(TransportError::Closed)),
        };
        let s = e.to_string();
        assert!(s.contains("deadline exceeded after 3"), "{s}");
        assert!(s.contains("closed"), "{s}");
    }

    #[test]
    fn conversions() {
        let e: OrbError = TransportError::Closed.into();
        assert_eq!(e, OrbError::Transport(TransportError::Closed));
        let e: OrbError = XdrError::InvalidUtf8.into();
        assert_eq!(e, OrbError::Xdr(XdrError::InvalidUtf8));
    }
}
