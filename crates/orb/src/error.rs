//! ORB-level error type.

use crate::capability::CapError;
use crate::ids::{ObjectId, ProtocolId};
use ohpc_transport::TransportError;
use ohpc_xdr::XdrError;

/// Everything that can go wrong on the remote-invocation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrbError {
    /// No entry in the OR's protocol table matched the local pool and was
    /// applicable for the current locations.
    NoApplicableProtocol {
        /// Protocols the OR offered.
        offered: Vec<ProtocolId>,
    },
    /// Transport failure underneath the selected protocol.
    Transport(TransportError),
    /// Marshaling failure.
    Xdr(XdrError),
    /// A capability refused or failed to transform the request.
    Capability(CapError),
    /// The server object raised an application exception.
    RemoteException(String),
    /// Target object does not exist at the server.
    NoSuchObject(ObjectId),
    /// Target object has no such method.
    NoSuchMethod(u32),
    /// The object kept moving: rebind retries exhausted.
    TooManyForwards(u32),
    /// Malformed frame or protocol violation.
    Protocol(String),
    /// Server-side glue chain referenced by the request is unknown.
    UnknownGlue(u64),
}

impl std::fmt::Display for OrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrbError::NoApplicableProtocol { offered } => {
                write!(f, "no applicable protocol among {offered:?}")
            }
            OrbError::Transport(e) => write!(f, "transport: {e}"),
            OrbError::Xdr(e) => write!(f, "marshal: {e}"),
            OrbError::Capability(e) => write!(f, "capability: {e}"),
            OrbError::RemoteException(m) => write!(f, "remote exception: {m}"),
            OrbError::NoSuchObject(id) => write!(f, "no such object {id}"),
            OrbError::NoSuchMethod(m) => write!(f, "no such method {m}"),
            OrbError::TooManyForwards(n) => write!(f, "object moved {n} times; giving up"),
            OrbError::Protocol(m) => write!(f, "protocol violation: {m}"),
            OrbError::UnknownGlue(id) => write!(f, "unknown glue chain {id}"),
        }
    }
}

impl std::error::Error for OrbError {}

impl From<TransportError> for OrbError {
    fn from(e: TransportError) -> Self {
        OrbError::Transport(e)
    }
}

impl From<XdrError> for OrbError {
    fn from(e: XdrError) -> Self {
        OrbError::Xdr(e)
    }
}

impl From<CapError> for OrbError {
    fn from(e: CapError) -> Self {
        OrbError::Capability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = OrbError::NoApplicableProtocol { offered: vec![ProtocolId::TCP] };
        assert!(e.to_string().contains("no applicable protocol"));
        assert!(OrbError::NoSuchMethod(4).to_string().contains("4"));
        assert!(OrbError::UnknownGlue(9).to_string().contains("9"));
    }

    #[test]
    fn conversions() {
        let e: OrbError = TransportError::Closed.into();
        assert_eq!(e, OrbError::Transport(TransportError::Closed));
        let e: OrbError = XdrError::InvalidUtf8.into();
        assert_eq!(e, OrbError::Xdr(XdrError::InvalidUtf8));
    }
}
