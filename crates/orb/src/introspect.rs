//! The introspection object: telemetry served over the ORB itself.
//!
//! Every [`Context`](crate::context::Context) registers one of these at a
//! well-known id — local counter [`INTROSPECTION_LOCAL_ID`] (0), i.e.
//! `ObjectId::compose(ctx, 0)` — so any client holding nothing but a
//! context id and a reachable OR can fetch that context's metrics *through
//! the ORB*, including through a glue entry with a full capability chain.
//! The telemetry layer thereby becomes its own end-to-end test surface: an
//! encrypted introspection fetch exercises selection, the capability chain,
//! and a transport, all of which record into the very snapshot returned.
//!
//! The snapshot served is [`ohpc_telemetry::Registry::global`], the registry
//! all workspace instrumentation records into. Since every context in a
//! process shares that registry, the view is **per-process**, not
//! per-context — `context_info` reports which context answered.

use ohpc_telemetry::Registry;

use crate::ids::{ContextId, ObjectId};

/// The context-local id every introspection object is registered under.
///
/// Object ids mint locals starting at 1, so 0 is reserved: the introspection
/// object of context `c` is always `ObjectId::compose(c, 0)`.
pub const INTROSPECTION_LOCAL_ID: u32 = 0;

/// The id of the introspection object hosted by context `ctx`.
pub fn introspection_object_id(ctx: ContextId) -> ObjectId {
    ObjectId::compose(ctx, INTROSPECTION_LOCAL_ID)
}

crate::remote_interface! {
    type_name = "OhpcIntrospection";
    trait IntrospectionApi;
    skeleton IntrospectionSkeleton;
    client IntrospectionClient;
    fn metrics_text() -> String = 1;
    fn counter_total(name: String) -> u64 = 2;
    fn context_info() -> String = 3;
    fn dump_traces() -> String = 4;
}

/// The first-party [`IntrospectionApi`] implementation every context hosts.
pub struct ContextIntrospection {
    ctx: ContextId,
}

impl ContextIntrospection {
    /// Introspection for the context identified by `ctx`.
    pub fn new(ctx: ContextId) -> Self {
        Self { ctx }
    }
}

impl IntrospectionApi for ContextIntrospection {
    fn metrics_text(&self) -> Result<String, String> {
        Ok(Registry::global().snapshot().to_text())
    }

    fn counter_total(&self, name: String) -> Result<u64, String> {
        Ok(Registry::global().snapshot().counter_total(&name))
    }

    fn context_info(&self) -> Result<String, String> {
        Ok(format!("context={} scope=process", self.ctx))
    }

    fn dump_traces(&self) -> Result<String, String> {
        Ok(ohpc_telemetry::TraceBuffer::global().snapshot_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::RemoteObject;
    use ohpc_xdr::{XdrReader, XdrWriter};

    #[test]
    fn well_known_id_is_local_zero() {
        let id = introspection_object_id(ContextId(9));
        assert_eq!(id.context(), ContextId(9));
        assert_eq!(id.local(), INTROSPECTION_LOCAL_ID);
    }

    #[test]
    fn serves_global_snapshot() {
        ohpc_telemetry::add("introspect_unit_test_total", &[], 5);
        let obj = ContextIntrospection::new(ContextId(3));
        let text = obj.metrics_text().expect("snapshot");
        assert!(text.contains("introspect_unit_test_total"), "{text}");
        assert!(obj.counter_total("introspect_unit_test_total".into()).expect("total") >= 5);
        assert_eq!(obj.context_info().expect("info"), "context=ContextId#3 scope=process");
    }

    #[test]
    fn skeleton_dispatches_metrics_text() {
        ohpc_telemetry::inc("introspect_dispatch_test_total", &[]);
        let skel = IntrospectionSkeleton(ContextIntrospection::new(ContextId(1)));
        assert_eq!(skel.type_name(), "OhpcIntrospection");
        let mut out = XdrWriter::new();
        skel.dispatch(1, &mut XdrReader::new(&[]), &mut out).expect("dispatch");
        let text: String = ohpc_xdr::decode_from_slice(&out.finish()).expect("decode");
        assert!(text.contains("introspect_dispatch_test_total"), "{text}");
    }

    #[test]
    fn skeleton_dispatches_dump_traces() {
        {
            let _t = ohpc_telemetry::install(ohpc_telemetry::TraceContext::new_root());
            ohpc_telemetry::trace_event("introspect_dump_probe", &[]);
        }
        let skel = IntrospectionSkeleton(ContextIntrospection::new(ContextId(1)));
        let mut out = XdrWriter::new();
        skel.dispatch(4, &mut XdrReader::new(&[]), &mut out).expect("dispatch");
        let text: String = ohpc_xdr::decode_from_slice(&out.finish()).expect("decode");
        assert!(text.contains("introspect_dump_probe"), "{text}");
    }
}
