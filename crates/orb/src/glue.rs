//! The glue protocol object: capability chains on the client side.
//!
//! A glue proto-object holds no communication mechanism. It instantiates the
//! entry's capability chain (through the process-local
//! [`CapabilityRegistry`]), runs each request body through the chain in
//! order, and delegates the transformed request to the *real* protocol named
//! by the entry's inner row — resolved against the same proto-pool used for
//! top-level selection. Replies are unprocessed through the mirrored chain.
//!
//! Applicability is the AND of every capability's predicate and the inner
//! protocol's own applicability, exactly as the paper specifies.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ohpc_netsim::{Location, SimNet};

use crate::capability::{
    process_chain, unprocess_chain, CallInfo, Capability, CapabilityRegistry, CapabilitySpec,
    Direction,
};
use crate::error::OrbError;
use crate::ids::ProtocolId;
use crate::message::{CapWireMeta, GlueWire, ReplyMessage, ReplyStatus, RequestMessage};
use crate::objref::{ProtoData, ProtoEntry};
use crate::proto::{ProtoObject, ProtoPool};

/// Sink for CPU time spent in capability processing, so that compute cost
/// lands on the same timeline as simulated wire cost.
pub trait ComputeMeter: Send + Sync {
    /// Records `d` of computation.
    fn charge(&self, d: Duration);
}

impl ComputeMeter for SimNet {
    fn charge(&self, d: Duration) {
        self.charge_compute(d);
    }
}

/// Client-side glue protocol object.
pub struct GlueProto {
    registry: Arc<CapabilityRegistry>,
    chains: Mutex<HashMap<u64, CachedChain>>,
    // Named distinctly from `ContextInner.meter`: set once by the
    // by-value builder below, then read-only — no lock needed.
    compute_meter: Option<Arc<dyn ComputeMeter>>,
}

struct CachedChain {
    /// Specs the instances were built from; if the entry's specs change
    /// (dynamic capability replacement), the cache entry is stale.
    specs: Vec<CapabilitySpec>,
    caps: Arc<Vec<Arc<dyn Capability>>>,
}

impl GlueProto {
    /// Builds a glue proto-object over the process's capability registry.
    pub fn new(registry: Arc<CapabilityRegistry>) -> Self {
        Self { registry, chains: Mutex::new(HashMap::new()), compute_meter: None }
    }

    /// Attaches a compute meter (used by the simulation harness).
    pub fn with_meter(mut self, meter: Arc<dyn ComputeMeter>) -> Self {
        self.compute_meter = Some(meter);
        self
    }

    /// Returns the (cached) live chain for a glue entry. Instances are cached
    /// by glue id because stateful capabilities (request budgets) must retain
    /// their state across calls; the cache re-validates against the entry's
    /// specs so a dynamically replaced chain is rebuilt, not reused stale.
    fn chain(
        &self,
        glue_id: u64,
        specs: &[CapabilitySpec],
    ) -> Result<Arc<Vec<Arc<dyn Capability>>>, OrbError> {
        if let Some(c) = self.chains.lock().get(&glue_id) {
            if c.specs == specs {
                return Ok(c.caps.clone());
            }
        }
        let caps = Arc::new(self.registry.build_chain(specs)?);
        self.chains
            .lock()
            .insert(glue_id, CachedChain { specs: specs.to_vec(), caps: caps.clone() });
        Ok(caps)
    }

    /// Drops the cached chain for `glue_id` (used when a client is handed a
    /// replacement capability set — "capabilities can be changed
    /// dynamically").
    pub fn invalidate(&self, glue_id: u64) {
        self.chains.lock().remove(&glue_id);
    }

    fn metered<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.compute_meter {
            None => f(),
            Some(m) => {
                let t0 = Instant::now();
                let out = f();
                m.charge(t0.elapsed());
                out
            }
        }
    }
}

fn glue_parts(entry: &ProtoEntry) -> Result<(u64, &[CapabilitySpec], &ProtoEntry), OrbError> {
    match &entry.data {
        ProtoData::Glue { glue_id, caps, inner } => Ok((*glue_id, caps, inner)),
        ProtoData::Endpoint(_) => {
            Err(OrbError::Protocol("glue proto-object given a non-glue entry".into()))
        }
    }
}

impl ProtoObject for GlueProto {
    fn protocol_id(&self) -> ProtocolId {
        ProtocolId::GLUE
    }

    fn applicable(
        &self,
        pool: &ProtoPool,
        client: &Location,
        server: &Location,
        entry: &ProtoEntry,
    ) -> bool {
        let Ok((glue_id, specs, inner)) = glue_parts(entry) else { return false };
        // Nested glue is not wire-representable (a frame carries ONE glue
        // section); capability composition happens within a single chain.
        if inner.id == ProtocolId::GLUE {
            return false;
        }
        // A chain we cannot build locally (unknown capability, missing keys)
        // makes the whole entry unusable.
        let Ok(chain) = self.chain(glue_id, specs) else { return false };
        if !chain.iter().all(|c| c.applicable(client, server)) {
            return false;
        }
        match pool.find(inner.id) {
            Some(p) => p.applicable(pool, client, server, inner),
            None => false,
        }
    }

    fn invoke(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<ReplyMessage, OrbError> {
        self.invoke_with_deadline(pool, entry, req, None)
    }

    /// Glue holds no wire of its own: the deadline budget is forwarded
    /// verbatim to the inner (real) protocol's blocking wait.
    fn invoke_with_deadline(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
        remaining_ns: Option<u64>,
    ) -> Result<ReplyMessage, OrbError> {
        let (glue_id, specs, inner) = glue_parts(entry)?;
        if inner.id == ProtocolId::GLUE {
            return Err(OrbError::Protocol(
                "nested glue entries are not supported: compose capabilities in one chain".into(),
            ));
        }
        let chain = self.chain(glue_id, specs)?;
        let inner_proto = pool
            .find(inner.id)
            .ok_or_else(|| OrbError::NoApplicableProtocol { offered: vec![inner.id] })?;

        let call = CallInfo { object: req.object, method: req.method, request_id: req.request_id };

        // Outbound: apply the chain in order.
        let (body, metas) =
            self.metered(|| process_chain(&chain, Direction::Request, &call, req.body.clone()))?;
        let glued = RequestMessage {
            request_id: req.request_id,
            object: req.object,
            method: req.method,
            oneway: req.oneway,
            glue: Some(GlueWire {
                glue_id,
                caps: metas
                    .into_iter()
                    .map(|(name, meta)| CapWireMeta { name, meta })
                    .collect(),
            }),
            body,
            trace: req.trace.clone(),
        };

        let mut reply = inner_proto.invoke_with_deadline(pool, inner, &glued, remaining_ns)?;

        // Inbound: un-apply the mirrored chain on successful replies.
        if reply.status == ReplyStatus::Ok {
            let Some(reply_glue) = reply.glue.take() else {
                return Err(OrbError::Protocol(
                    "server reply skipped the glue chain".into(),
                ));
            };
            let metas: Vec<(String, bytes::Bytes)> =
                reply_glue.caps.into_iter().map(|c| (c.name, c.meta)).collect();
            let body = self.metered(|| {
                unprocess_chain(&chain, Direction::Reply, &call, &metas, reply.body.clone())
            })?;
            reply.body = body;
        }
        Ok(reply)
    }

    fn invoke_oneway(
        &self,
        pool: &ProtoPool,
        entry: &ProtoEntry,
        req: &RequestMessage,
    ) -> Result<(), OrbError> {
        let (glue_id, specs, inner) = glue_parts(entry)?;
        if inner.id == ProtocolId::GLUE {
            return Err(OrbError::Protocol(
                "nested glue entries are not supported: compose capabilities in one chain".into(),
            ));
        }
        let chain = self.chain(glue_id, specs)?;
        let inner_proto = pool
            .find(inner.id)
            .ok_or_else(|| OrbError::NoApplicableProtocol { offered: vec![inner.id] })?;
        let call = CallInfo { object: req.object, method: req.method, request_id: req.request_id };
        let (body, metas) =
            self.metered(|| process_chain(&chain, Direction::Request, &call, req.body.clone()))?;
        let glued = RequestMessage {
            request_id: req.request_id,
            object: req.object,
            method: req.method,
            oneway: true,
            glue: Some(GlueWire {
                glue_id,
                caps: metas
                    .into_iter()
                    .map(|(name, meta)| CapWireMeta { name, meta })
                    .collect(),
            }),
            body,
            trace: req.trace.clone(),
        };
        inner_proto.invoke_oneway(pool, inner, &glued)
    }

    fn describe(&self, entry: &ProtoEntry) -> String {
        match glue_parts(entry) {
            Ok((_, specs, inner)) => {
                let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                format!("glue[{}]->{}", names.join("+"), inner.id)
            }
            Err(_) => "glue[?]".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{CapError, CapMeta};
    use crate::ids::{ObjectId, RequestId};
    use bytes::Bytes;

    /// Capability that reverses the body — order-sensitive, so chain ordering
    /// bugs show up immediately when combined with `ShiftCap`.
    struct ReverseCap;
    impl Capability for ReverseCap {
        fn name(&self) -> &str {
            "reverse"
        }
        fn process(&self, _d: Direction, _c: &CallInfo, _m: &mut CapMeta, b: Bytes) -> Result<Bytes, CapError> {
            Ok(b.iter().rev().copied().collect::<Vec<_>>().into())
        }
        fn unprocess(&self, _d: Direction, _c: &CallInfo, _m: &CapMeta, b: Bytes) -> Result<Bytes, CapError> {
            Ok(b.iter().rev().copied().collect::<Vec<_>>().into())
        }
    }

    /// Adds 1 to every byte on process, subtracts on unprocess.
    struct ShiftCap;
    impl Capability for ShiftCap {
        fn name(&self) -> &str {
            "shift"
        }
        fn process(&self, _d: Direction, _c: &CallInfo, _m: &mut CapMeta, b: Bytes) -> Result<Bytes, CapError> {
            Ok(b.iter().map(|x| x.wrapping_add(1)).collect::<Vec<_>>().into())
        }
        fn unprocess(&self, _d: Direction, _c: &CallInfo, _m: &CapMeta, b: Bytes) -> Result<Bytes, CapError> {
            Ok(b.iter().map(|x| x.wrapping_sub(1)).collect::<Vec<_>>().into())
        }
    }

    /// Cross-LAN-only capability for applicability tests.
    struct CrossLanCap;
    impl Capability for CrossLanCap {
        fn name(&self) -> &str {
            "auth"
        }
        fn applicable(&self, c: &Location, s: &Location) -> bool {
            c.lan != s.lan
        }
        fn process(&self, _d: Direction, _c: &CallInfo, _m: &mut CapMeta, b: Bytes) -> Result<Bytes, CapError> {
            Ok(b)
        }
        fn unprocess(&self, _d: Direction, _c: &CallInfo, _m: &CapMeta, b: Bytes) -> Result<Bytes, CapError> {
            Ok(b)
        }
    }

    fn registry() -> Arc<CapabilityRegistry> {
        let reg = CapabilityRegistry::new();
        reg.register("reverse", |_| Ok(Arc::new(ReverseCap)));
        reg.register("shift", |_| Ok(Arc::new(ShiftCap)));
        reg.register("auth", |_| Ok(Arc::new(CrossLanCap)));
        Arc::new(reg)
    }

    /// Loopback "real" protocol: pretends to be a server that unprocesses the
    /// chain, checks the plaintext, re-processes the reply. It uses the same
    /// registry, mimicking the server-side glue class.
    struct LoopbackServerProto {
        registry: Arc<CapabilityRegistry>,
        specs: Vec<CapabilitySpec>,
    }
    impl ProtoObject for LoopbackServerProto {
        fn protocol_id(&self) -> ProtocolId {
            ProtocolId::TCP
        }
        fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
            true
        }
        fn invoke(
            &self,
            _pool: &ProtoPool,
            _entry: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            let chain = self.registry.build_chain(&self.specs).unwrap();
            let glue = req.glue.clone().expect("glue section expected");
            let call =
                CallInfo { object: req.object, method: req.method, request_id: req.request_id };
            let metas: Vec<(String, Bytes)> =
                glue.caps.iter().map(|c| (c.name.clone(), c.meta.clone())).collect();
            let plain =
                unprocess_chain(&chain, Direction::Request, &call, &metas, req.body.clone())
                    .unwrap();
            // Echo back doubled, through the chain.
            let mut out = plain.to_vec();
            out.extend_from_slice(&plain);
            let (body, metas) =
                process_chain(&chain, Direction::Reply, &call, Bytes::from(out)).unwrap();
            Ok(ReplyMessage {
                request_id: req.request_id,
                status: ReplyStatus::Ok,
                glue: Some(GlueWire {
                    glue_id: glue.glue_id,
                    caps: metas
                        .into_iter()
                        .map(|(name, meta)| CapWireMeta { name, meta })
                        .collect(),
                }),
                body,
            })
        }
    }

    fn specs() -> Vec<CapabilitySpec> {
        vec![CapabilitySpec::new("reverse"), CapabilitySpec::new("shift")]
    }

    fn pool_with_loopback() -> ProtoPool {
        let reg = registry();
        ProtoPool::new()
            .with(Arc::new(GlueProto::new(reg.clone())))
            .with(Arc::new(LoopbackServerProto { registry: reg, specs: specs() }))
    }

    fn glue_entry() -> ProtoEntry {
        ProtoEntry::glue(42, specs(), ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"))
    }

    #[test]
    fn end_to_end_chain_roundtrip() {
        let pool = pool_with_loopback();
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        let req = RequestMessage {
            request_id: RequestId(1),
            object: ObjectId(1),
            method: 0,
            oneway: false,
            glue: None,
            body: Bytes::from_static(b"xyz"),
            trace: None,
        };
        let reply = glue.invoke(&pool, &glue_entry(), &req).unwrap();
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(&reply.body[..], b"xyzxyz", "client sees plaintext reply");
    }

    #[test]
    fn applicability_is_and_of_caps_and_inner() {
        let pool = pool_with_loopback();
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        let entry = ProtoEntry::glue(
            7,
            vec![CapabilitySpec::new("auth")],
            ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
        );
        let server = Location::new(0, 0);
        let same_lan_client = Location::new(1, 0);
        let cross_lan_client = Location::new(2, 5);
        assert!(!glue.applicable(&pool, &same_lan_client, &server, &entry));
        assert!(glue.applicable(&pool, &cross_lan_client, &server, &entry));
    }

    #[test]
    fn unknown_capability_makes_entry_inapplicable() {
        let pool = pool_with_loopback();
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        let entry = ProtoEntry::glue(
            8,
            vec![CapabilitySpec::new("no-such-capability")],
            ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
        );
        assert!(!glue.applicable(&pool, &Location::new(1, 1), &Location::new(0, 0), &entry));
    }

    #[test]
    fn missing_inner_protocol_makes_entry_inapplicable() {
        let reg = registry();
        let pool = ProtoPool::new().with(Arc::new(GlueProto::new(reg)));
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        assert!(!glue.applicable(&pool, &Location::new(1, 1), &Location::new(0, 0), &glue_entry()));
    }

    #[test]
    fn chain_instances_are_cached_by_glue_id() {
        let reg = registry();
        let glue = GlueProto::new(reg);
        let a = glue.chain(1, &specs()).unwrap();
        let b = glue.chain(1, &specs()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        glue.invalidate(1);
        let c = glue.chain(1, &specs()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn describe_names_chain_and_inner() {
        let pool = pool_with_loopback();
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        assert_eq!(glue.describe(&glue_entry()), "glue[reverse+shift]->tcp");
    }

    #[test]
    fn nested_glue_is_rejected_not_mangled() {
        // A doubly-wrapped entry would lose the outer chain's metadata on
        // the wire (one glue section per frame), so it is refused up front.
        let pool = pool_with_loopback();
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        let nested = ProtoEntry::glue(
            9,
            vec![CapabilitySpec::new("shift")],
            ProtoEntry::glue(
                10,
                vec![CapabilitySpec::new("reverse")],
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
            ),
        );
        assert!(!glue.applicable(&pool, &Location::new(1, 1), &Location::new(0, 0), &nested));
        let req = RequestMessage {
            request_id: RequestId(1),
            object: ObjectId(1),
            method: 0,
            oneway: false,
            glue: None,
            body: Bytes::new(),
            trace: None,
        };
        assert!(matches!(
            glue.invoke(&pool, &nested, &req).unwrap_err(),
            OrbError::Protocol(_)
        ));
    }

    #[test]
    fn non_glue_entry_is_protocol_error() {
        let pool = pool_with_loopback();
        let glue = pool.find(ProtocolId::GLUE).unwrap();
        let req = RequestMessage {
            request_id: RequestId(1),
            object: ObjectId(1),
            method: 0,
            oneway: false,
            glue: None,
            body: Bytes::new(),
            trace: None,
        };
        let entry = ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1");
        assert!(matches!(
            glue.invoke(&pool, &entry, &req).unwrap_err(),
            OrbError::Protocol(_)
        ));
    }
}
