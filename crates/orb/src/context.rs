//! Contexts: the server side of the ORB.
//!
//! A context is the HPC++ "virtual address space": it hosts objects, owns
//! the server half of every protocol (listeners and the Nexus service), the
//! server-side glue chains, migration tombstones, and mints Object
//! References. A `Context` value is a cheap clone of shared state, so server
//! threads, experiment drivers, and the migration manager can all hold one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use ohpc_nexus::NexusService;
use ohpc_netsim::Location;
use ohpc_resilience::{BreakerState, HealthKey, HealthPolicy, HealthRegistry};
use ohpc_runtime::{AdmissionController, Executor, Permit, SerialQueue};
use ohpc_transport::{Connection, Listener};
use ohpc_xdr::{XdrReader, XdrWriter};

use crate::capability::{
    process_chain, unprocess_chain, CallInfo, CapError, Capability, CapabilityRegistry,
    CapabilitySpec, Direction,
};
use crate::error::OrbError;
use crate::glue::ComputeMeter;
use crate::ids::{ContextId, ObjectId, ProtocolId};
use crate::message::{CapWireMeta, GlueWire, ReplyMessage, ReplyStatus, RequestMessage};
use crate::objref::{ObjectReference, ProtoEntry};
use crate::skeleton::{MethodError, RemoteObject};
use crate::transport_proto::NEXUS_ORB_HANDLER;

/// How a protocol is advertised in ORs this context mints.
#[derive(Debug, Clone)]
pub struct ProtoAdvert {
    /// Protocol id, as it will appear in OR tables.
    pub id: ProtocolId,
    /// Endpoint string clients dial.
    pub endpoint: String,
}

/// Specification of one OR table row when minting a reference.
#[derive(Debug, Clone)]
pub enum OrRow {
    /// A plain protocol row, resolved against this context's adverts.
    Plain(ProtocolId),
    /// A glue row: the chain `glue_id` wrapped around protocol `inner`.
    Glue {
        /// Chain previously installed with [`Context::add_glue`].
        glue_id: u64,
        /// The real protocol underneath.
        inner: ProtocolId,
    },
}

struct GlueChain {
    specs: Vec<CapabilitySpec>,
    caps: Vec<Arc<dyn Capability>>,
}

struct ServerHandle {
    shutdown: Box<dyn Fn() + Send>,
    join: Option<JoinHandle<()>>,
}

/// Request-served hook (load tracking, logging).
pub type RequestHook = Box<dyn Fn(ObjectId, u32) + Send + Sync>;

struct ContextInner {
    id: ContextId,
    location: RwLock<Location>,
    next_local: AtomicU32,
    next_glue: AtomicU64,
    objects: RwLock<HashMap<ObjectId, Arc<dyn RemoteObject>>>,
    tombstones: RwLock<HashMap<ObjectId, ObjectReference>>,
    glues: RwLock<HashMap<u64, Arc<GlueChain>>>,
    registry: Arc<CapabilityRegistry>,
    adverts: RwLock<Vec<ProtoAdvert>>,
    servers: Mutex<Vec<ServerHandle>>,
    nexus_services: Mutex<Vec<ohpc_nexus::RunningService>>,
    on_request: RwLock<Option<RequestHook>>,
    meter: RwLock<Option<Arc<dyn ComputeMeter>>>,
    requests_served: AtomicU64,
    stopping: std::sync::atomic::AtomicBool,
    /// Executes two-way dispatch on split connections. Pluggable so tests
    /// can pin deterministic inline dispatch or A/B the legacy
    /// thread-per-request strategy; defaults to the shared work-stealing
    /// pool.
    executor: RwLock<Arc<dyn Executor>>,
    /// Bounds admitted-but-unfinished requests (queued + executing).
    admission: AdmissionController,
    /// Server-local breaker over the admission gate: sustained shedding
    /// with no completions in between trips it, halving the effective
    /// in-flight limit until the backlog drains (hysteresis against
    /// admit/shed flapping right at the bound).
    dispatch_health: Arc<HealthRegistry>,
    dispatch_key: HealthKey,
    /// Set on the first shed; while set, completions feed the breaker.
    /// Avoids taking the health-map lock on every request when the server
    /// has never been under pressure.
    dispatch_pressure: std::sync::atomic::AtomicBool,
}

/// A server context. Clones share state.
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

/// Alias kept for API clarity where a context is held purely to keep its
/// server threads alive.
pub type ContextHandle = Context;

impl Context {
    /// Creates a context at `location` with the given capability registry.
    ///
    /// Every context hosts a first-party introspection object under the
    /// well-known id `ObjectId::compose(id, 0)` (see [`crate::introspect`]),
    /// so clients can fetch the process's telemetry snapshot over the ORB.
    pub fn new(id: ContextId, location: Location, registry: Arc<CapabilityRegistry>) -> Self {
        let mut objects: HashMap<ObjectId, Arc<dyn RemoteObject>> = HashMap::new();
        objects.insert(
            crate::introspect::introspection_object_id(id),
            Arc::new(crate::introspect::IntrospectionSkeleton(
                crate::introspect::ContextIntrospection::new(id),
            )),
        );
        Self {
            inner: Arc::new(ContextInner {
                id,
                location: RwLock::new(location),
                next_local: AtomicU32::new(1),
                next_glue: AtomicU64::new(1),
                objects: RwLock::new(objects),
                tombstones: RwLock::new(HashMap::new()),
                glues: RwLock::new(HashMap::new()),
                registry,
                adverts: RwLock::new(Vec::new()),
                servers: Mutex::new(Vec::new()),
                nexus_services: Mutex::new(Vec::new()),
                on_request: RwLock::new(None),
                meter: RwLock::new(None),
                requests_served: AtomicU64::new(0),
                stopping: std::sync::atomic::AtomicBool::new(false),
                executor: RwLock::new(ohpc_runtime::shared_pool()),
                admission: AdmissionController::from_env(),
                dispatch_health: Arc::new(HealthRegistry::new().with_policy(HealthPolicy {
                    // Tripping requires this many sheds with not a single
                    // completion in between — a genuine stall, not a blip
                    // at the admission bound.
                    failure_threshold: 8,
                    cooldown_ns: 100_000_000,
                    close_after: 2,
                })),
                dispatch_key: HealthKey::new("dispatch", format!("ctx-{}", id.0)),
                dispatch_pressure: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// This context's id.
    pub fn id(&self) -> ContextId {
        self.inner.id
    }

    /// Where this context runs.
    pub fn location(&self) -> Location {
        *self.inner.location.read()
    }

    /// The capability registry used to build server-side chains.
    pub fn registry(&self) -> &Arc<CapabilityRegistry> {
        &self.inner.registry
    }

    /// Attaches a compute meter: server-side capability processing time is
    /// charged to it (the simulation harness passes the `SimNet`).
    pub fn set_meter(&self, meter: Arc<dyn ComputeMeter>) {
        *self.inner.meter.write() = Some(meter);
    }

    /// Installs a hook called once per dispatched request.
    pub fn set_request_hook(&self, hook: RequestHook) {
        *self.inner.on_request.write() = Some(hook);
    }

    /// Total requests dispatched by this context.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests_served.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------- executor

    /// Replaces the dispatch executor. Affects split connections accepted
    /// after the call; inline (non-splittable) connections always dispatch
    /// on the reader thread regardless.
    pub fn set_executor(&self, executor: Arc<dyn Executor>) {
        *self.inner.executor.write() = executor;
    }

    /// The executor two-way requests on split connections run on.
    pub fn executor(&self) -> Arc<dyn Executor> {
        self.inner.executor.read().clone()
    }

    /// Overrides the admitted-in-flight bound (`None` disables shedding).
    /// The default comes from `OHPC_QUEUE_BOUND` (1024 when unset).
    pub fn set_admission_limit(&self, limit: Option<usize>) {
        self.inner.admission.set_limit(limit);
    }

    /// Requests currently admitted and not yet finished (queued + executing).
    pub fn admitted_in_flight(&self) -> usize {
        self.inner.admission.in_flight()
    }

    /// State of the dispatch breaker layered over the admission gate.
    pub fn dispatch_breaker(&self) -> BreakerState {
        self.inner.dispatch_health.state(&self.inner.dispatch_key)
    }

    // ---------------------------------------------------------------- objects

    /// Hosts `object`, returning its new global id.
    pub fn register(&self, object: Arc<dyn RemoteObject>) -> ObjectId {
        let local = self.inner.next_local.fetch_add(1, Ordering::Relaxed);
        let id = ObjectId::compose(self.inner.id, local);
        self.inner.objects.write().insert(id, object);
        id
    }

    /// Removes and returns an object (migration step 1). The caller is
    /// expected to install a tombstone once the object lands elsewhere.
    pub fn take_object(&self, id: ObjectId) -> Option<Arc<dyn RemoteObject>> {
        self.inner.objects.write().remove(&id)
    }

    /// Hosts an object under a caller-provided id (migration step 2: the
    /// object keeps its identity at its new home).
    pub fn adopt(&self, id: ObjectId, object: Arc<dyn RemoteObject>) {
        self.inner.objects.write().insert(id, object);
        // A stale tombstone must not shadow a real resident object.
        self.inner.tombstones.write().remove(&id);
    }

    /// Leaves a forwarding tombstone: requests for `id` get `Moved(new_or)`.
    pub fn install_tombstone(&self, id: ObjectId, new_or: ObjectReference) {
        self.inner.tombstones.write().insert(id, new_or);
    }

    /// Number of live application objects (the auto-registered introspection
    /// object is infrastructure and is not counted).
    pub fn object_count(&self) -> usize {
        self.inner
            .objects
            .read()
            .keys()
            .filter(|id| id.local() != crate::introspect::INTROSPECTION_LOCAL_ID)
            .count()
    }

    /// The id of this context's introspection object (always hosted; see
    /// [`crate::introspect`]).
    pub fn introspection_id(&self) -> ObjectId {
        crate::introspect::introspection_object_id(self.inner.id)
    }

    /// Whether `id` is resident here (not a tombstone).
    pub fn hosts(&self, id: ObjectId) -> bool {
        self.inner.objects.read().contains_key(&id)
    }

    // ------------------------------------------------------------------ glue

    /// Installs a server-side capability chain, returning its glue id.
    /// Instances are built once from `specs` via this context's registry;
    /// stateful capabilities (budgets) live as long as the chain.
    pub fn add_glue(&self, specs: Vec<CapabilitySpec>) -> Result<u64, CapError> {
        let caps = self.inner.registry.build_chain(&specs)?;
        let glue_id = self.inner.next_glue.fetch_add(1, Ordering::Relaxed);
        self.inner.glues.write().insert(glue_id, Arc::new(GlueChain { specs, caps }));
        Ok(glue_id)
    }

    /// Replaces the chain behind `glue_id` (dynamic capability change).
    pub fn replace_glue(&self, glue_id: u64, specs: Vec<CapabilitySpec>) -> Result<(), CapError> {
        let caps = self.inner.registry.build_chain(&specs)?;
        self.inner.glues.write().insert(glue_id, Arc::new(GlueChain { specs, caps }));
        Ok(())
    }

    // -------------------------------------------------------------- serving

    /// Records that clients can reach this context over `id` at `endpoint`
    /// without starting a listener (used when an external server, e.g. a
    /// Nexus service, already accepts for us).
    pub fn advertise(&self, id: ProtocolId, endpoint: String) {
        self.inner.adverts.write().push(ProtoAdvert { id, endpoint });
    }

    /// Serves ORB frames on `listener`, advertising it as protocol `id`.
    pub fn serve(&self, listener: Box<dyn Listener>, id: ProtocolId) {
        self.advertise(id, listener.endpoint().to_string());
        let ctx = self.clone();
        let mut listener = listener;
        let shutdown_listener: Box<dyn Fn() + Send> = listener.stop_fn();
        let join = std::thread::spawn(move || {
            // Connection threads are detached: each exits when its client
            // hangs up. Joining them here would deadlock shutdown while any
            // client still holds a cached connection.
            while let Ok(conn) = listener.accept() {
                let ctx = ctx.clone();
                std::thread::spawn(move || ctx.serve_connection(conn));
            }
        });
        self.inner
            .servers
            .lock()
            .push(ServerHandle { shutdown: shutdown_listener, join: Some(join) });
    }

    /// Serves ORB frames through a Nexus service (the baseline protocol),
    /// advertising it as protocol `id`.
    pub fn serve_nexus(&self, listener: Box<dyn Listener>, id: ProtocolId) {
        let ctx = self.clone();
        let mut svc = NexusService::new();
        svc.register(NEXUS_ORB_HANDLER, move |args, out| {
            let n = args.remaining();
            let frame = args.get_fixed_opaque(n).map_err(|e| e.to_string())?;
            let reply = ctx.handle_frame(frame);
            out.put_fixed_opaque(&reply);
            Ok(())
        });
        let running = svc.start(listener);
        self.advertise(id, running.endpoint().to_string());
        self.inner.nexus_services.lock().push(running);
    }

    /// Stops all listeners and joins server threads. Established connections
    /// stop being served: their next request closes the connection, which
    /// clients observe as a transport error (and transparently re-dial if a
    /// new server binds the endpoint).
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        for h in self.inner.servers.lock().iter() {
            (h.shutdown)();
        }
        for mut h in self.inner.servers.lock().drain(..) {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
        self.inner.nexus_services.lock().clear();
    }

    /// Abrupt crash, for fault injection: stops serving immediately —
    /// listeners close and in-flight requests are abandoned mid-connection —
    /// but unlike [`shutdown`](Self::shutdown) it is meant to be followed by
    /// [`restart`](Self::restart): the object table survives, the way
    /// on-disk state survives a real process crash. Clients observe dropped
    /// connections and refused dials.
    pub fn crash(&self) {
        ohpc_telemetry::inc("orb_context_crashes_total", &[]);
        self.inner.stopping.store(true, Ordering::Release);
        for h in self.inner.servers.lock().iter() {
            (h.shutdown)();
        }
        for mut h in self.inner.servers.lock().drain(..) {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
        self.inner.nexus_services.lock().clear();
        // Advertised endpoints died with the listeners.
        self.inner.adverts.write().clear();
    }

    /// Re-arms a crashed context: serving works again once fresh listeners
    /// are attached with [`serve`](Self::serve).
    pub fn restart(&self) {
        ohpc_telemetry::inc("orb_context_restarts_total", &[]);
        self.inner.stopping.store(false, Ordering::Release);
    }

    fn serve_connection(&self, mut conn: Box<dyn Connection>) {
        // Splittable transports get concurrent dispatch: clients multiplex
        // many requests onto one connection, so handling them one at a time
        // would re-serialize the wire server-side.
        if let Some((tx, rx)) = conn.try_split() {
            drop(conn);
            self.serve_connection_split(tx, rx);
            return;
        }
        while let Ok(frame) = conn.recv() {
            if self.inner.stopping.load(Ordering::Acquire) {
                return; // drop the connection: this context is gone
            }
            // One-way requests yield no reply frame.
            if let Some(reply) = self.handle_frame_opt(&frame) {
                if conn.send(&reply).is_err() {
                    return;
                }
            }
        }
    }

    /// Concurrent server loop for split connections: the reader decodes
    /// frames in arrival order, runs admission, and hands admitted requests
    /// to the context's executor. Reply writers share the send half behind
    /// a lock; the transport's framing keeps interleaved replies whole, and
    /// the client demultiplexes by request id, so reply order does not
    /// matter.
    ///
    /// Ordering guarantee: one-way requests from one connection run through
    /// a per-connection FIFO lane ([`SerialQueue`]), and every two-way
    /// request barriers on the one-ways read before it (`wait_for`), so
    /// clients keep the invariant "one-ways dispatched before a later
    /// two-way is answered" — previously provided by running one-ways
    /// inline on the reader thread, which let a slow one-way starve the
    /// demux loop.
    fn serve_connection_split(
        &self,
        tx: Box<dyn ohpc_transport::SendHalf>,
        mut rx: Box<dyn ohpc_transport::RecvHalf>,
    ) {
        let writer = Arc::new(Mutex::new(tx));
        let executor = self.executor();
        let oneways = SerialQueue::new(executor.clone());
        while let Ok(frame) = rx.recv() {
            if self.inner.stopping.load(Ordering::Acquire) {
                return; // drop the connection: this context is gone
            }
            let req = match RequestMessage::from_frame(&frame) {
                Ok(r) => r,
                Err(e) => {
                    // We cannot know the request id; reply with id 0 and an
                    // exception so the client at least unblocks.
                    let reply = ReplyMessage::status(
                        crate::ids::RequestId(0),
                        ReplyStatus::Exception(format!("malformed request: {e}")),
                    )
                    .to_frame();
                    // ohpc-analyze: allow(guard-across-blocking) — the writer
                    // mutex serializes replies from the executor tasks; one
                    // frame per guard is the design.
                    if writer.lock().send(&reply).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let rid = req.request_id;
            let oneway = req.oneway;
            let permit = match self.admit(&req) {
                Ok(p) => p,
                Err(status) => {
                    if oneway {
                        // No reply channel to signal backpressure on; the
                        // drop shows in the shed counters and the trace.
                        ohpc_telemetry::inc("orb_oneway_shed_total", &[]);
                        continue;
                    }
                    // Shed replies go out straight from the reader thread:
                    // gracefully degrading means rejections stay fast when
                    // the pool is the thing that is saturated.
                    let reply = ReplyMessage::status(rid, status).to_frame();
                    // ohpc-analyze: allow(guard-across-blocking) — see above.
                    if writer.lock().send(&reply).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if oneway {
                let ctx = self.clone();
                oneways.enqueue(Box::new(move || {
                    let _ = ctx.dispatch_admitted(req, permit);
                }));
                continue;
            }
            // Two-way: barrier on the one-ways read before this request,
            // then dispatch and reply. The permit rides inside the task so
            // queue time counts against the admission bound.
            let mark = oneways.mark();
            let lane = oneways.clone();
            let ctx = self.clone();
            let writer = writer.clone();
            executor.execute(Box::new(move || {
                lane.wait_for(mark);
                let reply = ctx.dispatch_admitted(req, permit).to_frame();
                // ohpc-analyze: allow(guard-across-blocking) — the writer
                // mutex serializes replies from the executor tasks; one
                // frame per guard is the design.
                let _ = writer.lock().send(&reply);
            }));
        }
    }

    // ------------------------------------------------------------ admission

    /// Admission control at the transport→dispatch boundary. Runs before
    /// any glue or object work, so a shed request costs microseconds
    /// instead of a worker. `Ok` carries the permit bounding in-flight
    /// work; `Err` carries the reply status to send back — the request was
    /// **not** executed, and the status tells the client whether retrying
    /// can help ([`ReplyStatus::Overloaded`] is retryable,
    /// [`ReplyStatus::DeadlineExpired`] is not).
    fn admit(&self, req: &RequestMessage) -> Result<Permit, ReplyStatus> {
        // Adopt the request's wire-propagated trace so shed events land in
        // the client's causal trace and the flight recorder.
        let _trace = req.trace.clone().map(ohpc_telemetry::install);

        // A request whose deadline stamp already expired is dead weight:
        // dispatching it spends a worker on a reply the caller has given
        // up on. The stamp travels in the clear in the capability
        // metadata, so this peek needs no glue-chain construction.
        if let Some(expires_ns) = req.deadline_expires_ns() {
            if ohpc_telemetry::Registry::global().now_ns() > expires_ns {
                ohpc_telemetry::inc("orb_deadline_shed_total", &[("at", "admission")]);
                ohpc_telemetry::trace_event("request_shed", &[("reason", "deadline")]);
                return Err(ReplyStatus::DeadlineExpired(
                    "deadline expired before dispatch".into(),
                ));
            }
        }

        let degraded = !self.inner.dispatch_health.allow(&self.inner.dispatch_key);
        match self.inner.admission.try_admit(degraded) {
            Ok(permit) => Ok(permit),
            Err(shed) => {
                let reason = if shed.degraded { "degraded" } else { "queue_full" };
                ohpc_telemetry::inc("orb_overload_shed_total", &[("reason", reason)]);
                ohpc_telemetry::trace_event("request_shed", &[("reason", reason)]);
                self.inner.dispatch_pressure.store(true, Ordering::Relaxed);
                self.inner.dispatch_health.record_failure(&self.inner.dispatch_key);
                Err(ReplyStatus::Overloaded(shed.to_string()))
            }
        }
    }

    /// Runs an admitted request to completion, then feeds the dispatch
    /// breaker and releases the admission permit (the permit also releases
    /// if the handler panics — it is owned by this frame).
    fn dispatch_admitted(&self, req: RequestMessage, permit: Permit) -> ReplyMessage {
        let reply = self.handle_request(req);
        if self.inner.dispatch_pressure.load(Ordering::Relaxed) {
            let health = &self.inner.dispatch_health;
            health.record_success(&self.inner.dispatch_key);
            if health.state(&self.inner.dispatch_key) == BreakerState::Closed {
                self.inner.dispatch_pressure.store(false, Ordering::Relaxed);
            }
        }
        drop(permit);
        reply
    }

    // ------------------------------------------------------------- dispatch

    /// Core server path: runs admission control, then decodes and
    /// dispatches (see [`handle_request`](Self::handle_request)). One-way
    /// requests still produce an encoded (dropped-by-the-caller) reply;
    /// use [`handle_frame_opt`](Self::handle_frame_opt) on serving paths.
    pub fn handle_frame(&self, frame: &[u8]) -> Bytes {
        self.handle_frame_opt(frame).unwrap_or_else(|| {
            ReplyMessage::status(crate::ids::RequestId(0), ReplyStatus::Ok).to_frame()
        })
    }

    /// Like [`handle_frame`](Self::handle_frame) but returns `None` for
    /// one-way requests (which are dispatched — or shed — and produce no
    /// reply frame).
    pub fn handle_frame_opt(&self, frame: &[u8]) -> Option<Bytes> {
        let req = match RequestMessage::from_frame(frame) {
            Ok(r) => r,
            Err(e) => {
                // We cannot know the request id; reply with id 0 and an
                // exception so the client at least unblocks.
                return Some(
                    ReplyMessage::status(
                        crate::ids::RequestId(0),
                        ReplyStatus::Exception(format!("malformed request: {e}")),
                    )
                    .to_frame(),
                );
            }
        };
        let rid = req.request_id;
        let oneway = req.oneway;
        let reply = match self.admit(&req) {
            Ok(permit) => self.dispatch_admitted(req, permit),
            Err(status) => {
                if oneway {
                    // No reply channel to signal backpressure on; the drop
                    // is visible in the shed counters and the trace.
                    ohpc_telemetry::inc("orb_oneway_shed_total", &[]);
                    return None;
                }
                ReplyMessage::status(rid, status)
            }
        };
        if oneway {
            None
        } else {
            Some(reply.to_frame())
        }
    }

    /// Typed form of [`handle_frame`](Self::handle_frame).
    ///
    /// All serving paths funnel here — inline connections, per-request
    /// threads on split connections, and the Nexus handler — so adopting the
    /// request's wire-propagated trace context at the top is enough to make
    /// every server-side span (dispatch, glue, capability) a child of the
    /// client's attempt span, whichever thread this runs on.
    pub fn handle_request(&self, req: RequestMessage) -> ReplyMessage {
        let rid = req.request_id;
        let _trace = req.trace.clone().map(ohpc_telemetry::install);
        let mut dispatch_span = ohpc_telemetry::trace_span_with(
            "server_dispatch",
            &[("method", &req.method.to_string()), ("ctx", &self.inner.id.0.to_string())],
        );
        let call = CallInfo { object: req.object, method: req.method, request_id: rid };
        // Drop-guard: records server-side handling latency on every return
        // path, including tombstone forwards and capability denials.
        let _span = ohpc_telemetry::span("orb_request_ns", &[]);

        // Tombstone? Forward the client to the object's new home.
        if let Some(new_or) = self.inner.tombstones.read().get(&req.object) {
            ohpc_telemetry::inc("orb_tombstone_hops_total", &[]);
            dispatch_span.attr("outcome", "moved");
            return ReplyMessage::status(rid, ReplyStatus::Moved(Box::new(new_or.clone())));
        }

        let Some(object) = self.inner.objects.read().get(&req.object).cloned() else {
            return ReplyMessage::status(rid, ReplyStatus::NoSuchObject);
        };

        // Glue: unprocess the request chain.
        let (body, glue_chain) = match &req.glue {
            None => (req.body.clone(), None),
            Some(wire) => {
                let Some(chain) = self.inner.glues.read().get(&wire.glue_id).cloned() else {
                    return ReplyMessage::status(rid, ReplyStatus::UnknownGlue(wire.glue_id));
                };
                let metas: Vec<(String, Bytes)> =
                    wire.caps.iter().map(|c| (c.name.clone(), c.meta.clone())).collect();
                let unglued = self.metered(|| {
                    unprocess_chain(&chain.caps, Direction::Request, &call, &metas, req.body.clone())
                });
                match unglued {
                    Ok(b) => (b, Some((wire.glue_id, chain))),
                    Err(CapError::Denied(msg)) => {
                        return ReplyMessage::status(rid, ReplyStatus::CapabilityDenied(msg));
                    }
                    Err(CapError::Expired(msg)) => {
                        // Deadline caught in the chain (e.g. the stamp was
                        // fresh at admission but queue time ate the rest of
                        // the budget): same non-retryable wire status as an
                        // admission-time deadline shed.
                        return ReplyMessage::status(rid, ReplyStatus::DeadlineExpired(msg));
                    }
                    Err(e) => {
                        return ReplyMessage::status(
                            rid,
                            ReplyStatus::Exception(format!("glue unprocess failed: {e}")),
                        );
                    }
                }
            }
        };

        // Dispatch.
        if let Some(hook) = self.inner.on_request.read().as_ref() {
            hook(req.object, req.method);
        }
        self.inner.requests_served.fetch_add(1, Ordering::Relaxed);
        ohpc_telemetry::inc("orb_requests_total", &[]);

        let mut out = XdrWriter::new();
        let mut args = XdrReader::new(&body);
        let dispatched = object.dispatch(req.method, &mut args, &mut out);
        let reply_body = match dispatched {
            Ok(()) => out.finish(),
            Err(MethodError::NoSuchMethod(m)) => {
                return ReplyMessage::status(rid, ReplyStatus::NoSuchMethod(m));
            }
            Err(MethodError::App(msg)) => {
                return ReplyMessage::status(rid, ReplyStatus::Exception(msg));
            }
            Err(MethodError::BadArgs(msg)) => {
                return ReplyMessage::status(
                    rid,
                    ReplyStatus::Exception(format!("bad arguments: {msg}")),
                );
            }
        };

        // Glue: process the reply chain (server is the sender now).
        match glue_chain {
            None => ReplyMessage::ok(rid, reply_body),
            Some((glue_id, chain)) => {
                let processed = self
                    .metered(|| process_chain(&chain.caps, Direction::Reply, &call, reply_body));
                match processed {
                    Ok((body, metas)) => ReplyMessage {
                        request_id: rid,
                        status: ReplyStatus::Ok,
                        glue: Some(GlueWire {
                            glue_id,
                            caps: metas
                                .into_iter()
                                .map(|(name, meta)| CapWireMeta { name, meta })
                                .collect(),
                        }),
                        body,
                    },
                    Err(CapError::Denied(msg)) => {
                        ReplyMessage::status(rid, ReplyStatus::CapabilityDenied(msg))
                    }
                    Err(CapError::Expired(msg)) => {
                        ReplyMessage::status(rid, ReplyStatus::DeadlineExpired(msg))
                    }
                    Err(e) => ReplyMessage::status(
                        rid,
                        ReplyStatus::Exception(format!("glue process failed: {e}")),
                    ),
                }
            }
        }
    }

    fn metered<T>(&self, f: impl FnOnce() -> T) -> T {
        let meter = self.inner.meter.read().clone();
        match meter {
            None => f(),
            Some(m) => {
                let t0 = Instant::now();
                let out = f();
                m.charge(t0.elapsed());
                out
            }
        }
    }

    /// Charges `d` of application compute to the attached meter, if any.
    /// Server method bodies in simulation experiments use this to model
    /// computation time.
    pub fn charge_compute(&self, d: Duration) {
        if let Some(m) = self.inner.meter.read().as_ref() {
            m.charge(d);
        }
    }

    // ------------------------------------------------------------------ ORs

    /// Mints an OR for `object` with the given preference-ordered rows.
    ///
    /// `Plain(p)` rows resolve `p` against this context's adverts (first
    /// advert wins); `Glue` rows wrap an installed chain around the inner
    /// protocol's advert. Rows naming unknown protocols or glue ids are
    /// errors — an OR that silently lacks promised rows would defeat the
    /// selection experiments.
    pub fn make_or(&self, object: ObjectId, rows: &[OrRow]) -> Result<ObjectReference, OrbError> {
        let objects = self.inner.objects.read();
        let obj = objects
            .get(&object)
            .ok_or(OrbError::NoSuchObject(object))?;
        let type_name = obj.type_name().to_string();
        drop(objects);

        let adverts = self.inner.adverts.read();
        let find = |id: ProtocolId| -> Result<ProtoEntry, OrbError> {
            adverts
                .iter()
                .find(|a| a.id == id)
                .map(|a| ProtoEntry::endpoint(id, a.endpoint.clone()))
                .ok_or(OrbError::NoApplicableProtocol { offered: vec![id] })
        };

        let mut protocols = Vec::with_capacity(rows.len());
        for row in rows {
            match row {
                OrRow::Plain(p) => protocols.push(find(*p)?),
                OrRow::Glue { glue_id, inner } => {
                    let chain = self
                        .inner
                        .glues
                        .read()
                        .get(glue_id)
                        .cloned()
                        .ok_or(OrbError::UnknownGlue(*glue_id))?;
                    protocols.push(ProtoEntry::glue(*glue_id, chain.specs.clone(), find(*inner)?));
                }
            }
        }

        Ok(ObjectReference {
            object,
            type_name,
            location: self.location(),
            protocols,
        })
    }
}

impl Drop for ContextInner {
    fn drop(&mut self) {
        for h in self.servers.lock().iter() {
            (h.shutdown)();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RequestId;
    use ohpc_xdr::{XdrDecode, XdrEncode};

    struct Echo;
    impl RemoteObject for Echo {
        fn type_name(&self) -> &str {
            "Echo"
        }
        fn dispatch(
            &self,
            method: u32,
            args: &mut XdrReader<'_>,
            out: &mut XdrWriter,
        ) -> Result<(), MethodError> {
            match method {
                1 => {
                    let v = Vec::<i32>::decode(args)
                        .map_err(|e| MethodError::BadArgs(e.to_string()))?;
                    v.encode(out);
                    Ok(())
                }
                m => Err(MethodError::NoSuchMethod(m)),
            }
        }
    }

    fn ctx() -> Context {
        Context::new(ContextId(1), Location::new(0, 0), Arc::new(CapabilityRegistry::new()))
    }

    fn request(object: ObjectId, body: Bytes) -> RequestMessage {
        RequestMessage {
            request_id: RequestId(7),
            object,
            method: 1,
            oneway: false,
            glue: None,
            body,
            trace: None,
        }
    }

    fn encoded_ints(v: &[i32]) -> Bytes {
        let mut w = XdrWriter::new();
        v.to_vec().encode(&mut w);
        w.finish()
    }

    #[test]
    fn register_and_dispatch() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        assert!(ctx.hosts(id));
        assert_eq!(id.context(), ContextId(1));

        let reply = ctx.handle_request(request(id, encoded_ints(&[1, 2, 3])));
        assert_eq!(reply.status, ReplyStatus::Ok);
        let v: Vec<i32> = ohpc_xdr::decode_from_slice(&reply.body).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(ctx.requests_served(), 1);
    }

    #[test]
    fn unknown_object_and_method() {
        let ctx = ctx();
        let reply = ctx.handle_request(request(ObjectId(999), Bytes::new()));
        assert_eq!(reply.status, ReplyStatus::NoSuchObject);

        let id = ctx.register(Arc::new(Echo));
        let mut req = request(id, encoded_ints(&[]));
        req.method = 42;
        let reply = ctx.handle_request(req);
        assert_eq!(reply.status, ReplyStatus::NoSuchMethod(42));
    }

    #[test]
    fn tombstone_forwards() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        let or = ctx.make_or(id, &[]).unwrap();
        ctx.take_object(id);
        ctx.install_tombstone(id, or.clone());
        let reply = ctx.handle_request(request(id, Bytes::new()));
        assert_eq!(reply.status, ReplyStatus::Moved(Box::new(or)));
    }

    #[test]
    fn adopt_clears_tombstone() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        let or = ctx.make_or(id, &[]).unwrap();
        let obj = ctx.take_object(id).unwrap();
        ctx.install_tombstone(id, or);
        ctx.adopt(id, obj);
        let reply = ctx.handle_request(request(id, encoded_ints(&[5])));
        assert_eq!(reply.status, ReplyStatus::Ok);
    }

    #[test]
    fn unknown_glue_is_reported() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        let mut req = request(id, Bytes::new());
        req.glue = Some(GlueWire { glue_id: 77, caps: vec![] });
        let reply = ctx.handle_request(req);
        assert_eq!(reply.status, ReplyStatus::UnknownGlue(77));
    }

    #[test]
    fn malformed_frame_still_replies() {
        let ctx = ctx();
        let reply_frame = ctx.handle_frame(&[1, 2, 3]);
        let reply = ReplyMessage::from_frame(&reply_frame).unwrap();
        assert!(matches!(reply.status, ReplyStatus::Exception(_)));
    }

    #[test]
    fn make_or_resolves_adverts_in_row_order() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        ctx.advertise(ProtocolId::TCP, "tcp://1.2.3.4:9".into());
        ctx.advertise(ProtocolId::SHM, "mem://3".into());
        let or = ctx
            .make_or(id, &[OrRow::Plain(ProtocolId::SHM), OrRow::Plain(ProtocolId::TCP)])
            .unwrap();
        assert_eq!(or.offered(), vec![ProtocolId::SHM, ProtocolId::TCP]);
        assert_eq!(or.type_name, "Echo");
        assert_eq!(or.location, Location::new(0, 0));
    }

    #[test]
    fn make_or_fails_on_missing_advert_or_glue() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        assert!(ctx.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).is_err());
        assert!(matches!(
            ctx.make_or(id, &[OrRow::Glue { glue_id: 5, inner: ProtocolId::TCP }]),
            Err(OrbError::UnknownGlue(5))
        ));
    }

    #[test]
    fn request_hook_fires() {
        let ctx = ctx();
        let id = ctx.register(Arc::new(Echo));
        let count = Arc::new(AtomicU64::new(0));
        let c2 = count.clone();
        ctx.set_request_hook(Box::new(move |_, _| {
            c2.fetch_add(1, Ordering::Relaxed);
        }));
        ctx.handle_request(request(id, encoded_ints(&[1])));
        ctx.handle_request(request(id, encoded_ints(&[2])));
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
