//! Collective invocations over groups of Global Pointers.
//!
//! HPC++ (the programming model Open HPC++ implements, §2) pairs remote
//! member calls with collective operations across sets of objects. A
//! [`GpGroup`] is the ORB-level building block: the same method + arguments
//! invoked against every member, each call running protocol selection
//! independently — so one group can simultaneously reach a co-located member
//! over shared memory, a LAN member over TCP and a remote member through an
//! authenticated glue chain.

use std::sync::Arc;

use bytes::Bytes;

use ohpc_xdr::XdrWriter;

use crate::error::OrbError;
use crate::gp::GlobalPointer;

/// A fixed group of Global Pointers addressed collectively.
pub struct GpGroup {
    members: Vec<Arc<GlobalPointer>>,
}

impl GpGroup {
    /// Builds a group from its members.
    pub fn new(members: Vec<Arc<GlobalPointer>>) -> Self {
        Self { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in group order.
    pub fn members(&self) -> &[Arc<GlobalPointer>] {
        &self.members
    }

    /// Invokes `method` with `args` on every member concurrently (one thread
    /// per member, as the 1999 runtime would), gathering per-member results
    /// in group order. One member failing does not stop the others.
    pub fn invoke_all(
        &self,
        method: u32,
        args: &XdrWriter,
    ) -> Vec<Result<Bytes, OrbError>> {
        let body = Bytes::copy_from_slice(args.peek());
        // Member calls run on their own threads, which have no trace scope
        // of their own — carry the collective caller's context across so all
        // member invocations (and their retries/failovers) share one trace.
        let trace = ohpc_telemetry::current();
        let handles: Vec<_> = self
            .members
            .iter()
            .enumerate()
            .map(|(i, gp)| {
                let gp = gp.clone();
                let body = body.clone();
                let trace = trace.clone();
                std::thread::spawn(move || {
                    let _t = trace.map(ohpc_telemetry::install);
                    let _span = ohpc_telemetry::trace_span_with(
                        "group_member",
                        &[("member", &i.to_string())],
                    );
                    gp.invoke_raw(method, body)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let res = h.join().unwrap_or_else(|_| {
                    Err(OrbError::Protocol("collective member thread panicked".into()))
                });
                if res.is_err() {
                    ohpc_telemetry::inc("orb_group_member_failures_total", &[]);
                }
                res
            })
            .collect()
    }

    /// Broadcast: one-way `method`+`args` to every member. Returns the
    /// per-member send outcomes (at-most-once semantics apply per member).
    pub fn broadcast(&self, method: u32, args: &XdrWriter) -> Vec<Result<(), OrbError>> {
        self.members.iter().map(|gp| gp.invoke_oneway(method, args)).collect()
    }

    /// Gather with decode: invokes on all members and decodes each Ok body
    /// as `T`, collecting into group order. The first failure aborts with
    /// its error (use [`invoke_all`](Self::invoke_all) for partial results).
    pub fn gather<T: ohpc_xdr::XdrDecode>(
        &self,
        method: u32,
        args: &XdrWriter,
    ) -> Result<Vec<T>, OrbError> {
        self.invoke_all(method, args)
            .into_iter()
            .map(|r| {
                let body = r?;
                ohpc_xdr::decode_from_slice::<T>(&body).map_err(OrbError::from)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, ProtocolId, RequestId};
    use crate::message::{ReplyMessage, ReplyStatus, RequestMessage};
    use crate::objref::{ObjectReference, ProtoEntry};
    use crate::proto::{ProtoObject, ProtoPool};
    use ohpc_netsim::Location;
    use ohpc_xdr::XdrEncode;

    /// Proto that echoes the object id as a u64 reply (so each member's
    /// result is distinguishable), failing for object 13.
    struct IdEcho;
    impl ProtoObject for IdEcho {
        fn protocol_id(&self) -> ProtocolId {
            ProtocolId::TCP
        }
        fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
            true
        }
        fn invoke(
            &self,
            _p: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            if req.object.0 == 13 {
                return Ok(ReplyMessage::status(
                    req.request_id,
                    ReplyStatus::Exception("unlucky".into()),
                ));
            }
            let mut w = XdrWriter::new();
            req.object.0.encode(&mut w);
            Ok(ReplyMessage::ok(req.request_id, w.finish()))
        }
        fn invoke_oneway(
            &self,
            _p: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<(), OrbError> {
            assert!(req.oneway);
            Ok(())
        }
    }

    fn group(ids: &[u64]) -> GpGroup {
        let pool = Arc::new(ProtoPool::new().with(Arc::new(IdEcho)));
        let members = ids
            .iter()
            .map(|&id| {
                let or = ObjectReference {
                    object: ObjectId(id),
                    type_name: "T".into(),
                    location: Location::new(0, 0),
                    protocols: vec![ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1")],
                };
                Arc::new(GlobalPointer::new(or, pool.clone(), Location::new(1, 1)))
            })
            .collect();
        GpGroup::new(members)
    }

    #[test]
    fn gather_collects_in_group_order() {
        let g = group(&[5, 9, 2]);
        assert_eq!(g.len(), 3);
        let results: Vec<u64> = g.gather(1, &XdrWriter::new()).unwrap();
        assert_eq!(results, vec![5, 9, 2]);
    }

    #[test]
    fn invoke_all_reports_partial_failures() {
        let g = group(&[1, 13, 3]);
        let results = g.invoke_all(1, &XdrWriter::new());
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(OrbError::RemoteException(_))));
        assert!(results[2].is_ok());
    }

    #[test]
    fn gather_aborts_on_first_failure() {
        let g = group(&[1, 13, 3]);
        assert!(g.gather::<u64>(1, &XdrWriter::new()).is_err());
    }

    #[test]
    fn broadcast_fires_oneway_everywhere() {
        let g = group(&[1, 2, 3, 4]);
        let outcomes = g.broadcast(7, &XdrWriter::new());
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(Result::is_ok));
        // the RequestId(0)-style assertion happens inside IdEcho::invoke_oneway
        let _ = RequestId(0);
    }

    #[test]
    fn empty_group_is_a_noop() {
        let g = GpGroup::new(vec![]);
        assert!(g.is_empty());
        assert!(g.invoke_all(1, &XdrWriter::new()).is_empty());
        assert_eq!(g.gather::<u64>(1, &XdrWriter::new()).unwrap(), Vec::<u64>::new());
    }
}
