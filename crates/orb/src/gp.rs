//! Global Pointers: the client side of the ORB.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use ohpc_netsim::Location;
use ohpc_xdr::XdrWriter;

use crate::error::OrbError;
use crate::ids::RequestId;
use crate::message::{ReplyStatus, RequestMessage};
use crate::objref::ObjectReference;
use crate::proto::ProtoPool;
use crate::selection::{select, Selection};

/// How many `Moved` forwards one invocation will chase before giving up.
const MAX_FORWARDS: u32 = 8;

/// A global pointer: an OR plus the local machinery to act on it.
///
/// The GP re-runs protocol selection on *every* invocation (the paper's
/// "the system selects an appropriate proto-object for each individual
/// remote request"), so changes to locations, the OR (via `Moved` rebinds or
/// [`rebind`](Self::rebind)), or the pool take effect immediately.
pub struct GlobalPointer {
    or: RwLock<ObjectReference>,
    pool: Arc<ProtoPool>,
    local: Location,
    next_request: AtomicU64,
    last_protocol: Mutex<Option<String>>,
    forwards_seen: AtomicU64,
}

impl GlobalPointer {
    /// Binds `or` with the process's proto-pool and the client's location.
    pub fn new(or: ObjectReference, pool: Arc<ProtoPool>, local: Location) -> Self {
        Self {
            or: RwLock::new(or),
            pool,
            local,
            next_request: AtomicU64::new(1),
            last_protocol: Mutex::new(None),
            forwards_seen: AtomicU64::new(0),
        }
    }

    /// Snapshot of the current OR (it may change as the object migrates).
    pub fn object_reference(&self) -> ObjectReference {
        self.or.read().clone()
    }

    /// Replaces the OR (capability hand-off, explicit rebind).
    pub fn rebind(&self, or: ObjectReference) {
        ohpc_telemetry::inc("orb_rebinds_total", &[]);
        *self.or.write() = or;
    }

    /// The client location this GP evaluates applicability against.
    pub fn local_location(&self) -> Location {
        self.local
    }

    /// Runs protocol selection without invoking, for inspection.
    pub fn select(&self) -> Result<Selection, OrbError> {
        let or = self.or.read();
        select(&or, &self.pool, &self.local)
    }

    /// Description of the protocol used by the most recent invocation
    /// (e.g. `glue[timeout+security]->tcp`), for experiment logs.
    pub fn last_protocol(&self) -> Option<String> {
        self.last_protocol.lock().clone()
    }

    /// How many `Moved` forwards this GP has chased over its lifetime.
    pub fn forwards_seen(&self) -> u64 {
        self.forwards_seen.load(Ordering::Relaxed)
    }

    /// User control over selection (the paper's fourth adaptivity aspect):
    /// reorders this GP's OR table so entries for `preferred` come first.
    /// Entries keep their relative order otherwise; unknown ids are a no-op.
    /// Selection still applies applicability — a preference cannot force an
    /// inapplicable protocol.
    pub fn prefer(&self, preferred: crate::ids::ProtocolId) {
        let mut or = self.or.write();
        let (mut first, rest): (Vec<_>, Vec<_>) =
            or.protocols.drain(..).partition(|e| e.id == preferred);
        first.extend(rest);
        or.protocols = first;
    }

    /// Removes every entry for `banned` from this GP's OR table, returning
    /// how many were removed — per-reference protocol policy, complementing
    /// pool-level policy.
    pub fn ban(&self, banned: crate::ids::ProtocolId) -> usize {
        let mut or = self.or.write();
        let before = or.protocols.len();
        or.protocols.retain(|e| e.id != banned);
        before - or.protocols.len()
    }

    /// Invokes method slot `method` with pre-encoded `args`, returning the
    /// encoded result body.
    pub fn invoke(&self, method: u32, args: &XdrWriter) -> Result<Bytes, OrbError> {
        self.invoke_raw(method, Bytes::copy_from_slice(args.peek()))
    }

    /// Fire-and-forget invocation: the request is dispatched at the server
    /// but no reply is read. At-most-once semantics — outcomes (including
    /// `Moved` forwards and capability denials) are not observable; pair
    /// one-ways with an occasional two-way call to rebind after migrations.
    pub fn invoke_oneway(&self, method: u32, args: &XdrWriter) -> Result<(), OrbError> {
        let (selection, object) = {
            let or = self.or.read();
            (select(&or, &self.pool, &self.local)?, or.object)
        };
        *self.last_protocol.lock() = Some(selection.describe());
        let req = RequestMessage {
            request_id: RequestId(self.next_request.fetch_add(1, Ordering::Relaxed)),
            object,
            method,
            oneway: true,
            glue: None,
            body: Bytes::copy_from_slice(args.peek()),
        };
        selection.proto.invoke_oneway(&self.pool, &selection.entry, &req)
    }

    /// Like [`invoke`](Self::invoke) but takes the body directly.
    pub fn invoke_raw(&self, method: u32, body: Bytes) -> Result<Bytes, OrbError> {
        for _attempt in 0..=MAX_FORWARDS {
            let (selection, object) = {
                let or = self.or.read();
                (select(&or, &self.pool, &self.local)?, or.object)
            };
            *self.last_protocol.lock() = Some(selection.describe());

            let req = RequestMessage {
                request_id: RequestId(self.next_request.fetch_add(1, Ordering::Relaxed)),
                object,
                method,
                oneway: false,
                glue: None,
                body: body.clone(),
            };

            let reply = selection.proto.invoke(&self.pool, &selection.entry, &req)?;
            match reply.status {
                ReplyStatus::Ok => return Ok(reply.body),
                ReplyStatus::Moved(new_or) => {
                    self.forwards_seen.fetch_add(1, Ordering::Relaxed);
                    ohpc_telemetry::inc("orb_forwards_total", &[]);
                    self.rebind(*new_or);
                    continue;
                }
                ReplyStatus::Exception(msg) => return Err(OrbError::RemoteException(msg)),
                ReplyStatus::NoSuchObject => return Err(OrbError::NoSuchObject(object)),
                ReplyStatus::NoSuchMethod(m) => return Err(OrbError::NoSuchMethod(m)),
                ReplyStatus::CapabilityDenied(msg) => {
                    return Err(OrbError::Capability(crate::capability::CapError::Denied(msg)));
                }
                ReplyStatus::UnknownGlue(id) => return Err(OrbError::UnknownGlue(id)),
            }
        }
        Err(OrbError::TooManyForwards(MAX_FORWARDS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, ProtocolId};
    use crate::message::ReplyMessage;
    use crate::objref::ProtoEntry;
    use crate::proto::ProtoObject;
    use std::sync::atomic::AtomicU32;

    /// Proto that answers from a scripted queue of replies.
    struct ScriptedProto {
        replies: Mutex<Vec<ReplyStatus>>,
        calls: AtomicU32,
    }

    impl ProtoObject for ScriptedProto {
        fn protocol_id(&self) -> ProtocolId {
            ProtocolId::TCP
        }
        fn applicable(
            &self,
            _p: &ProtoPool,
            _c: &Location,
            _s: &Location,
            _e: &ProtoEntry,
        ) -> bool {
            true
        }
        fn invoke(
            &self,
            _p: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let status = self.replies.lock().remove(0);
            Ok(match status {
                ReplyStatus::Ok => ReplyMessage::ok(req.request_id, req.body.clone()),
                s => ReplyMessage::status(req.request_id, s),
            })
        }
    }

    fn or_at(machine: u32) -> ObjectReference {
        ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(machine, 0),
            protocols: vec![ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1")],
        }
    }

    fn gp_with(replies: Vec<ReplyStatus>) -> (GlobalPointer, Arc<ScriptedProto>) {
        let proto = Arc::new(ScriptedProto { replies: Mutex::new(replies), calls: AtomicU32::new(0) });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        (GlobalPointer::new(or_at(0), pool, Location::new(5, 1)), proto)
    }

    #[test]
    fn ok_returns_body() {
        let (gp, proto) = gp_with(vec![ReplyStatus::Ok]);
        let out = gp.invoke_raw(1, Bytes::from_static(b"abc")).unwrap();
        assert_eq!(&out[..], b"abc");
        assert_eq!(proto.calls.load(Ordering::Relaxed), 1);
        assert_eq!(gp.last_protocol().unwrap(), "tcp");
    }

    #[test]
    fn moved_rebinds_and_retries() {
        let (gp, proto) = gp_with(vec![
            ReplyStatus::Moved(Box::new(or_at(9))),
            ReplyStatus::Ok,
        ]);
        let out = gp.invoke_raw(1, Bytes::from_static(b"x")).unwrap();
        assert_eq!(&out[..], b"x");
        assert_eq!(proto.calls.load(Ordering::Relaxed), 2);
        assert_eq!(gp.forwards_seen(), 1);
        assert_eq!(gp.object_reference().location, Location::new(9, 0));
    }

    #[test]
    fn endless_moves_give_up() {
        let moves: Vec<ReplyStatus> =
            (0..20).map(|i| ReplyStatus::Moved(Box::new(or_at(i)))).collect();
        let (gp, _) = gp_with(moves);
        let err = gp.invoke_raw(1, Bytes::new()).unwrap_err();
        assert!(matches!(err, OrbError::TooManyForwards(_)));
    }

    #[test]
    fn error_statuses_map_to_errors() {
        let (gp, _) = gp_with(vec![
            ReplyStatus::Exception("kaboom".into()),
            ReplyStatus::NoSuchObject,
            ReplyStatus::NoSuchMethod(3),
            ReplyStatus::CapabilityDenied("over budget".into()),
            ReplyStatus::UnknownGlue(6),
        ]);
        assert_eq!(
            gp.invoke_raw(1, Bytes::new()).unwrap_err(),
            OrbError::RemoteException("kaboom".into())
        );
        assert_eq!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::NoSuchObject(ObjectId(1)));
        assert_eq!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::NoSuchMethod(3));
        assert!(matches!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::Capability(_)));
        assert_eq!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::UnknownGlue(6));
    }

    #[test]
    fn request_ids_increase() {
        struct IdRecorder(Mutex<Vec<u64>>);
        impl ProtoObject for IdRecorder {
            fn protocol_id(&self) -> ProtocolId {
                ProtocolId::TCP
            }
            fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
                true
            }
            fn invoke(
                &self,
                _p: &ProtoPool,
                _e: &ProtoEntry,
                req: &RequestMessage,
            ) -> Result<ReplyMessage, OrbError> {
                self.0.lock().push(req.request_id.0);
                Ok(ReplyMessage::ok(req.request_id, Bytes::new()))
            }
        }
        let rec = Arc::new(IdRecorder(Mutex::new(vec![])));
        let pool = Arc::new(ProtoPool::new().with(rec.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        for _ in 0..3 {
            gp.invoke_raw(1, Bytes::new()).unwrap();
        }
        let ids = rec.0.lock().clone();
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prefer_reorders_and_ban_removes() {
        struct TwoProtos(ProtocolId);
        impl ProtoObject for TwoProtos {
            fn protocol_id(&self) -> ProtocolId {
                self.0
            }
            fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
                true
            }
            fn invoke(
                &self,
                _p: &ProtoPool,
                _e: &ProtoEntry,
                req: &RequestMessage,
            ) -> Result<ReplyMessage, OrbError> {
                Ok(ReplyMessage::ok(req.request_id, Bytes::new()))
            }
        }
        let or = ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(0, 0),
            protocols: vec![
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://h:2"),
            ],
        };
        let pool = Arc::new(
            ProtoPool::new()
                .with(Arc::new(TwoProtos(ProtocolId::TCP)))
                .with(Arc::new(TwoProtos(ProtocolId::NEXUS_TCP))),
        );
        let gp = GlobalPointer::new(or, pool, Location::new(5, 1));

        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::TCP);
        gp.prefer(ProtocolId::NEXUS_TCP);
        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::NEXUS_TCP);
        // unknown preference is harmless
        gp.prefer(ProtocolId(999));
        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::NEXUS_TCP);

        assert_eq!(gp.ban(ProtocolId::NEXUS_TCP), 1);
        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::TCP);
        assert_eq!(gp.ban(ProtocolId::TCP), 1);
        assert!(gp.select().is_err(), "empty table selects nothing");
    }

    #[test]
    fn no_protocol_in_pool_errors() {
        let pool = Arc::new(ProtoPool::new());
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        assert!(matches!(
            gp.invoke_raw(1, Bytes::new()).unwrap_err(),
            OrbError::NoApplicableProtocol { .. }
        ));
        assert!(gp.select().is_err());
    }
}
