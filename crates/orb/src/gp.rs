//! Global Pointers: the client side of the ORB.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use ohpc_netsim::Location;
use ohpc_resilience::{ErrorClass, HealthRegistry, RetryPolicy, Sleeper, ThreadSleeper};
use ohpc_xdr::XdrWriter;

use crate::error::OrbError;
use crate::ids::RequestId;
use crate::message::{ReplyStatus, RequestMessage};
use crate::objref::ObjectReference;
use crate::proto::ProtoPool;
use crate::selcache::{cache_enabled, registry_ptr, CachedSelection, Lookup, SelectionCache};
use crate::selection::{health_key, select_with_health, Selection};

/// How many `Moved` forwards one invocation will chase before giving up.
const MAX_FORWARDS: u32 = 8;

/// Process-global request-id source. Ids must be unique across every GP in
/// the process, not merely per-GP: GPs bound to the same endpoint share one
/// multiplexed channel, and the demux reader routes replies by request id.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

fn next_request_id() -> RequestId {
    RequestId(NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed))
}

/// A global pointer: an OR plus the local machinery to act on it.
///
/// The GP re-decides protocol selection on *every* invocation attempt (the
/// paper's "the system selects an appropriate proto-object for each
/// individual remote request"), so changes to locations, the OR (via `Moved`
/// rebinds or [`rebind`](Self::rebind)), or the pool take effect on the very
/// next attempt. Since PR 9 the decision is served from a per-GP cache
/// revalidated with four atomic loads (`or_epoch`, pool epoch, health
/// registry identity + generation) and re-walked only on a mismatch — the
/// adaptivity is preserved by construction, the re-walk cost is not paid on
/// the happy path (see `selcache` / DESIGN.md §15). Set
/// `OHPC_SELECTION_CACHE=0` to force the full walk on every attempt.
///
/// # Fault awareness
///
/// Each invocation runs under a [`RetryPolicy`]: transport failures observed
/// before the frame left the process are retried with exponential backoff
/// until the attempt budget or deadline runs out, and every retry re-runs
/// selection with a fresh request id — so a retry is free to land on a
/// different OR-table row than the attempt that failed. Failures observed
/// *after* the frame was sent ([`OrbError::AmbiguousTransport`]) are retried
/// only when the request is idempotent ([`Self::invoke_idempotent`] or
/// [`RetryPolicy::assume_idempotent`]); a non-idempotent request is never
/// re-sent once it may have reached the server.
///
/// Outcomes feed a per-(terminal protocol, terminal endpoint)
/// [`HealthRegistry`]: enough consecutive transport failures open that
/// entry's circuit breaker, and selection then prefers the next applicable
/// row until the cooldown elapses and a probe succeeds. Share one registry
/// across the GPs of a process with [`Self::set_health_registry`] so they
/// pool their observations.
pub struct GlobalPointer {
    or: RwLock<ObjectReference>,
    /// Selection-input epoch: bumped on every mutation of this GP's inputs
    /// that the pool/health counters don't already cover — OR-table changes
    /// (rebind, effective prefer/ban) *and* health-registry swaps. The
    /// per-GP selection cache revalidates against this counter (together
    /// with [`ProtoPool::epoch`] and [`HealthRegistry::generation`]) instead
    /// of re-walking its inputs; `epoch-bump` in ohpc-analyze enforces that
    /// no mutation path forgets it.
    or_epoch: AtomicU64,
    pool: Arc<ProtoPool>,
    local: Location,
    /// Description of the last selection, rendered once at cache fill and
    /// shared as `Arc<str>` — the hot path never re-formats it.
    last_protocol: Mutex<Option<Arc<str>>>,
    forwards_seen: AtomicU64,
    retry: Mutex<RetryPolicy>,
    health: Mutex<Arc<HealthRegistry>>,
    sleeper: Mutex<Arc<dyn Sleeper>>,
    cache: SelectionCache,
}

impl GlobalPointer {
    /// Binds `or` with the process's proto-pool and the client's location.
    pub fn new(or: ObjectReference, pool: Arc<ProtoPool>, local: Location) -> Self {
        Self {
            or: RwLock::new(or),
            or_epoch: AtomicU64::new(0),
            pool,
            local,
            last_protocol: Mutex::new(None),
            forwards_seen: AtomicU64::new(0),
            retry: Mutex::new(RetryPolicy::default()),
            health: Mutex::new(Arc::new(HealthRegistry::new())),
            sleeper: Mutex::new(Arc::new(ThreadSleeper)),
            cache: SelectionCache::default(),
        }
    }

    /// Replaces the retry policy for subsequent invocations.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.lock().clone()
    }

    /// The health registry selection consults (per-GP unless shared).
    pub fn health_registry(&self) -> Arc<HealthRegistry> {
        self.health.lock().clone()
    }

    /// Shares a health registry (typically one per process, or one driven by
    /// a netsim `VirtualClock` in tests).
    ///
    /// Swapping the registry is a selection-input mutation: a cached
    /// selection keyed on the *old* registry's generation would keep serving
    /// choices that never consult the new breakers (and a new registry's
    /// generation can numerically collide with the old one's). The epoch
    /// bump makes every cached selection strictly older than the swap.
    pub fn set_health_registry(&self, health: Arc<HealthRegistry>) {
        *self.health.lock() = health;
        self.or_epoch.fetch_add(1, Ordering::Release);
    }

    /// Replaces how backoff pauses are spent — tests inject a
    /// [`ohpc_resilience::FnSleeper`] that advances virtual time instead of
    /// blocking the thread.
    pub fn set_sleeper(&self, sleeper: Arc<dyn Sleeper>) {
        *self.sleeper.lock() = sleeper;
    }

    /// Snapshot of the current OR (it may change as the object migrates).
    pub fn object_reference(&self) -> ObjectReference {
        self.or.read().clone()
    }

    /// Replaces the OR (capability hand-off, explicit rebind).
    pub fn rebind(&self, or: ObjectReference) {
        ohpc_telemetry::inc("orb_rebinds_total", &[]);
        *self.or.write() = or;
        self.or_epoch.fetch_add(1, Ordering::Release);
    }

    /// Selection-input epoch: changes whenever this GP's OR table does.
    /// A cached selection is valid only while this (and the pool/health
    /// counterparts) is unchanged.
    pub fn or_epoch(&self) -> u64 {
        self.or_epoch.load(Ordering::Acquire)
    }

    /// The client location this GP evaluates applicability against.
    pub fn local_location(&self) -> Location {
        self.local
    }

    /// Runs protocol selection without invoking, for inspection. Consults
    /// the health registry exactly like a real invocation would, but always
    /// performs the full table walk — this is the *uncached* reference the
    /// cache is validated against (tests assert
    /// `select_cached() ≡ select().index` under arbitrary mutation
    /// interleavings).
    pub fn select(&self) -> Result<Selection, OrbError> {
        let health = self.health.lock().clone();
        let or = self.or.read();
        select_with_health(&or, &self.pool, &self.local, Some(&health))
    }

    /// Selection exactly as the next invocation attempt would perform it:
    /// through the per-GP cache (revalidate-or-walk-and-refill). Returns the
    /// chosen OR-table row index. Used by the selection benchmarks and the
    /// cache-consistency tests; real invocations share the same path.
    pub fn select_cached(&self) -> Result<usize, OrbError> {
        let health = self.health.lock().clone();
        Ok(self.attempt_selection(&health)?.selection.index)
    }

    /// Cache hits served by this GP's selection cache (process-wide totals
    /// are on `orb_selection_cache_total{outcome}`).
    pub fn selection_cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Description of the protocol used by the most recent invocation
    /// (e.g. `glue[timeout+security]->tcp`), for experiment logs. The string
    /// is rendered once per selection-cache fill and shared — cloning the
    /// `Arc` is free.
    pub fn last_protocol(&self) -> Option<Arc<str>> {
        self.last_protocol.lock().clone()
    }

    /// How many `Moved` forwards this GP has chased over its lifetime.
    pub fn forwards_seen(&self) -> u64 {
        self.forwards_seen.load(Ordering::Relaxed)
    }

    /// User control over selection (the paper's fourth adaptivity aspect):
    /// reorders this GP's OR table so entries for `preferred` come first.
    /// Entries keep their relative order otherwise; unknown ids are a no-op.
    /// Selection still applies applicability — a preference cannot force an
    /// inapplicable protocol.
    pub fn prefer(&self, preferred: crate::ids::ProtocolId) {
        let mut or = self.or.write();
        let (mut first, rest): (Vec<_>, Vec<_>) =
            or.protocols.iter().cloned().partition(|e| e.id == preferred);
        if first.is_empty() {
            // Unknown id: the table is untouched, so the epoch must not
            // move — a gratuitous bump would invalidate the selection cache
            // for nothing.
            return;
        }
        first.extend(rest);
        if first == or.protocols {
            // Already preferred-first: reordering was a no-op.
            return;
        }
        or.protocols = first;
        drop(or);
        self.or_epoch.fetch_add(1, Ordering::Release);
    }

    /// Removes every entry for `banned` from this GP's OR table, returning
    /// how many were removed — per-reference protocol policy, complementing
    /// pool-level policy.
    pub fn ban(&self, banned: crate::ids::ProtocolId) -> usize {
        let mut or = self.or.write();
        let before = or.protocols.len();
        or.protocols.retain(|e| e.id != banned);
        let removed = before - or.protocols.len();
        drop(or);
        if removed > 0 {
            self.or_epoch.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Selection for one attempt: revalidate the per-GP cache with four
    /// atomic loads, serve the memo on a hit, otherwise run the full
    /// health-aware walk and (if the result is steady) refill.
    ///
    /// Key values are read *before* the walk and stamped onto the memo: a
    /// mutation landing between the reads and the walk leaves the memo
    /// stamped with pre-mutation epochs, so the next lookup conservatively
    /// misses. Reading keys after the walk would permit the reverse — a
    /// fresh stamp on a stale walk, served until the next unrelated bump.
    fn attempt_selection(
        &self,
        health: &Arc<HealthRegistry>,
    ) -> Result<Arc<CachedSelection>, OrbError> {
        let or_epoch = self.or_epoch.load(Ordering::Acquire);
        let pool_epoch = self.pool.epoch();
        let hptr = registry_ptr(health);
        let hgen = health.generation();
        if cache_enabled() {
            if let Lookup::Hit(cached) = self.cache.lookup(or_epoch, pool_epoch, hptr, hgen) {
                ohpc_telemetry::trace_event("selection", &[("outcome", "cached")]);
                return Ok(cached);
            }
        }
        let (selection, object) = {
            let or = self.or.read();
            (select_with_health(&or, &self.pool, &self.local, Some(health))?, or.object)
        };
        let described: Arc<str> = selection.describe().into();
        let key = health_key(&selection.entry);
        let steady = selection.steady;
        let cached = Arc::new(CachedSelection::new(
            selection, object, described, key, or_epoch, pool_epoch, hptr, hgen,
        ));
        if steady && cache_enabled() {
            // Breaker-influenced choices are never memoized: an open
            // breaker's cooldown elapsing changes the outcome with time
            // alone, without any generation bump to invalidate on.
            self.cache.fill(cached.clone());
        }
        Ok(cached)
    }

    /// Invokes method slot `method` with pre-encoded `args`, returning the
    /// encoded result body.
    pub fn invoke(&self, method: u32, args: &XdrWriter) -> Result<Bytes, OrbError> {
        self.invoke_raw(method, Bytes::copy_from_slice(args.peek()))
    }

    /// Fire-and-forget invocation: the request is dispatched at the server
    /// but no reply is read. At-most-once semantics — outcomes (including
    /// `Moved` forwards and capability denials) are not observable; pair
    /// one-ways with an occasional two-way call to rebind after migrations.
    pub fn invoke_oneway(&self, method: u32, args: &XdrWriter) -> Result<(), OrbError> {
        // One-ways carry trace context to the server but produce no reply
        // half: the dispatch span records remotely, never back here.
        let ctx = ohpc_telemetry::current().unwrap_or_else(ohpc_telemetry::TraceContext::new_root);
        let _trace = ohpc_telemetry::install(ctx);
        let mut span = ohpc_telemetry::trace_span("gp_oneway");
        let health = self.health.lock().clone();
        let cached = self.attempt_selection(&health)?;
        span.attr("proto", &cached.described);
        *self.last_protocol.lock() = Some(cached.described.clone());
        let req = RequestMessage {
            request_id: next_request_id(),
            object: cached.object,
            method,
            oneway: true,
            glue: None,
            body: Bytes::copy_from_slice(args.peek()),
            trace: ohpc_telemetry::current(),
        };
        match cached.selection.proto.invoke_oneway(&self.pool, &cached.selection.entry, &req) {
            Ok(()) => {
                health.record_success(&cached.key);
                Ok(())
            }
            Err(e) => {
                if e.is_transport() {
                    health.record_failure(&cached.key);
                }
                Err(e)
            }
        }
    }

    /// Like [`invoke`](Self::invoke) but takes the body directly.
    pub fn invoke_raw(&self, method: u32, body: Bytes) -> Result<Bytes, OrbError> {
        self.invoke_raw_with(method, body, false)
    }

    /// [`invoke`](Self::invoke) for a request the caller promises is
    /// idempotent: ambiguous failures (sent-but-no-reply) may be retried,
    /// because executing the request twice is harmless.
    pub fn invoke_idempotent(&self, method: u32, args: &XdrWriter) -> Result<Bytes, OrbError> {
        self.invoke_raw_with(method, Bytes::copy_from_slice(args.peek()), true)
    }

    /// [`invoke_raw`](Self::invoke_raw) with the idempotence promise.
    pub fn invoke_raw_idempotent(&self, method: u32, body: Bytes) -> Result<Bytes, OrbError> {
        self.invoke_raw_with(method, body, true)
    }

    /// The retry driver: attempts under the policy's budget, backoff between
    /// attempts, deadline accounting on the health registry's clock.
    fn invoke_raw_with(
        &self,
        method: u32,
        body: Bytes,
        idempotent: bool,
    ) -> Result<Bytes, OrbError> {
        let policy = self.retry.lock().clone();
        let idempotent = idempotent || policy.idempotent;
        let health = self.health.lock().clone();
        let clock = health.clock();
        let deadline = policy.deadline_from(clock.now_ns());
        // Adopt the caller's trace or mint a fresh root: every retry,
        // breaker failover, and Moved forward below shares this trace id, so
        // one trace tells the whole story of the invocation.
        let ctx =
            ohpc_telemetry::current().unwrap_or_else(ohpc_telemetry::TraceContext::new_root);
        let _trace = ohpc_telemetry::install(ctx);
        // Jitter salt: the request counter at entry, so concurrent callers
        // and successive invocations desynchronize deterministically.
        let salt = NEXT_REQUEST_ID.load(Ordering::Relaxed);
        let mut failed_attempts: u32 = 0;
        loop {
            let err = match self.attempt_once(method, &body, &health, deadline, failed_attempts) {
                Ok(reply_body) => return Ok(reply_body),
                Err(e) => e,
            };
            failed_attempts += 1;
            let class = err.retry_class();
            let may_retry = match class {
                ErrorClass::Retryable => true,
                // The server may have executed the request; only an
                // idempotence promise makes a re-send safe.
                ErrorClass::Ambiguous => idempotent,
                ErrorClass::Permanent => false,
            };
            if !may_retry || failed_attempts >= policy.max_attempts {
                if may_retry && failed_attempts >= policy.max_attempts {
                    // The flight recorder has the whole doomed trace; keep it.
                    ohpc_telemetry::trace_event("retry_budget_exhausted", &[]);
                    ohpc_telemetry::dump_to_results("retry-budget-exhausted");
                }
                return Err(err);
            }
            let backoff = policy.backoff_ns(failed_attempts - 1, salt);
            if let Some(d) = deadline {
                if clock.now_ns().saturating_add(backoff) > d {
                    ohpc_telemetry::trace_event("deadline_exceeded", &[]);
                    ohpc_telemetry::dump_to_results("deadline-exceeded");
                    return Err(OrbError::DeadlineExceeded {
                        attempts: failed_attempts,
                        last: Box::new(err),
                    });
                }
            }
            ohpc_telemetry::inc("resilience_retries_total", &[("class", class.label())]);
            ohpc_telemetry::trace_event("retry", &[("class", class.label())]);
            let sleeper = self.sleeper.lock().clone();
            sleeper.sleep_ns(backoff);
        }
    }

    /// One attempt: selection (health-aware), invocation, `Moved` chasing.
    /// Forward rebinds are part of a single attempt — an object migrating is
    /// not a fault and does not consume retry budget. Every transport
    /// outcome feeds the health registry under the selected entry's terminal
    /// (protocol, endpoint) key. The remaining deadline budget (if any) is
    /// recomputed per forward and handed down so transports can arm receive
    /// timeouts — a hung server then fails the attempt instead of outliving
    /// the policy's deadline.
    fn attempt_once(
        &self,
        method: u32,
        body: &Bytes,
        health: &Arc<HealthRegistry>,
        deadline: Option<u64>,
        attempt: u32,
    ) -> Result<Bytes, OrbError> {
        let clock = health.clock();
        for forward in 0..=MAX_FORWARDS {
            // One span per attempt×forward hop; the request inherits this
            // span's context, so server-side dispatch parents on it.
            let mut span = ohpc_telemetry::trace_span_with(
                "gp_attempt",
                &[
                    ("attempt", &attempt.to_string()),
                    ("forward", &forward.to_string()),
                    ("method", &method.to_string()),
                ],
            );
            let cached = self.attempt_selection(health)?;
            let object = cached.object;
            span.attr("proto", &cached.described);
            *self.last_protocol.lock() = Some(cached.described.clone());

            let req = RequestMessage {
                request_id: next_request_id(),
                object,
                method,
                oneway: false,
                glue: None,
                body: body.clone(),
                trace: ohpc_telemetry::current(),
            };

            let remaining_ns = deadline.map(|d| d.saturating_sub(clock.now_ns()));
            let reply = match cached.selection.proto.invoke_with_deadline(
                &self.pool,
                &cached.selection.entry,
                &req,
                remaining_ns,
            ) {
                Ok(reply) => {
                    // Any delivered reply proves the wire works, whatever
                    // the application-level status says.
                    health.record_success(&cached.key);
                    reply
                }
                Err(e) => {
                    if e.is_transport() {
                        health.record_failure(&cached.key);
                    }
                    return Err(e);
                }
            };
            match reply.status {
                ReplyStatus::Ok => return Ok(reply.body),
                ReplyStatus::Moved(new_or) => {
                    self.forwards_seen.fetch_add(1, Ordering::Relaxed);
                    ohpc_telemetry::inc("orb_forwards_total", &[]);
                    ohpc_telemetry::trace_event(
                        "forward",
                        &[("to", &new_or.location.to_string())],
                    );
                    self.rebind(*new_or);
                    continue;
                }
                status => {
                    match &status {
                        ReplyStatus::Overloaded(_) => {
                            // The server shed before executing; the retry
                            // loop above backs off and re-offers (possibly
                            // to another replica once selection consults
                            // breakers).
                            ohpc_telemetry::inc("orb_overloaded_replies_total", &[]);
                            ohpc_telemetry::trace_event("server_overloaded", &[]);
                        }
                        ReplyStatus::DeadlineExpired(_) => {
                            ohpc_telemetry::inc("orb_deadline_expired_replies_total", &[]);
                        }
                        _ => {}
                    }
                    return Err(status.into_orb_error(object));
                }
            }
        }
        Err(OrbError::TooManyForwards(MAX_FORWARDS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, ProtocolId};
    use crate::message::ReplyMessage;
    use crate::objref::ProtoEntry;
    use crate::proto::ProtoObject;
    use std::sync::atomic::AtomicU32;

    /// Proto that answers from a scripted queue of replies.
    struct ScriptedProto {
        replies: Mutex<Vec<ReplyStatus>>,
        calls: AtomicU32,
    }

    impl ProtoObject for ScriptedProto {
        fn protocol_id(&self) -> ProtocolId {
            ProtocolId::TCP
        }
        fn applicable(
            &self,
            _p: &ProtoPool,
            _c: &Location,
            _s: &Location,
            _e: &ProtoEntry,
        ) -> bool {
            true
        }
        fn invoke(
            &self,
            _p: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let status = self.replies.lock().remove(0);
            Ok(match status {
                ReplyStatus::Ok => ReplyMessage::ok(req.request_id, req.body.clone()),
                s => ReplyMessage::status(req.request_id, s),
            })
        }
    }

    fn or_at(machine: u32) -> ObjectReference {
        ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(machine, 0),
            protocols: vec![ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1")],
        }
    }

    fn gp_with(replies: Vec<ReplyStatus>) -> (GlobalPointer, Arc<ScriptedProto>) {
        let proto = Arc::new(ScriptedProto { replies: Mutex::new(replies), calls: AtomicU32::new(0) });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        (GlobalPointer::new(or_at(0), pool, Location::new(5, 1)), proto)
    }

    #[test]
    fn ok_returns_body() {
        let (gp, proto) = gp_with(vec![ReplyStatus::Ok]);
        let out = gp.invoke_raw(1, Bytes::from_static(b"abc")).unwrap();
        assert_eq!(&out[..], b"abc");
        assert_eq!(proto.calls.load(Ordering::Relaxed), 1);
        assert_eq!(gp.last_protocol().as_deref(), Some("tcp"));
    }

    #[test]
    fn moved_rebinds_and_retries() {
        let (gp, proto) = gp_with(vec![
            ReplyStatus::Moved(Box::new(or_at(9))),
            ReplyStatus::Ok,
        ]);
        let out = gp.invoke_raw(1, Bytes::from_static(b"x")).unwrap();
        assert_eq!(&out[..], b"x");
        assert_eq!(proto.calls.load(Ordering::Relaxed), 2);
        assert_eq!(gp.forwards_seen(), 1);
        assert_eq!(gp.object_reference().location, Location::new(9, 0));
    }

    #[test]
    fn endless_moves_give_up() {
        let moves: Vec<ReplyStatus> =
            (0..20).map(|i| ReplyStatus::Moved(Box::new(or_at(i)))).collect();
        let (gp, _) = gp_with(moves);
        let err = gp.invoke_raw(1, Bytes::new()).unwrap_err();
        assert!(matches!(err, OrbError::TooManyForwards(_)));
    }

    #[test]
    fn error_statuses_map_to_errors() {
        let (gp, _) = gp_with(vec![
            ReplyStatus::Exception("kaboom".into()),
            ReplyStatus::NoSuchObject,
            ReplyStatus::NoSuchMethod(3),
            ReplyStatus::CapabilityDenied("over budget".into()),
            ReplyStatus::UnknownGlue(6),
        ]);
        assert_eq!(
            gp.invoke_raw(1, Bytes::new()).unwrap_err(),
            OrbError::RemoteException("kaboom".into())
        );
        assert_eq!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::NoSuchObject(ObjectId(1)));
        assert_eq!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::NoSuchMethod(3));
        assert!(matches!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::Capability(_)));
        assert_eq!(gp.invoke_raw(1, Bytes::new()).unwrap_err(), OrbError::UnknownGlue(6));
    }

    #[test]
    fn request_ids_increase() {
        struct IdRecorder(Mutex<Vec<u64>>);
        impl ProtoObject for IdRecorder {
            fn protocol_id(&self) -> ProtocolId {
                ProtocolId::TCP
            }
            fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
                true
            }
            fn invoke(
                &self,
                _p: &ProtoPool,
                _e: &ProtoEntry,
                req: &RequestMessage,
            ) -> Result<ReplyMessage, OrbError> {
                self.0.lock().push(req.request_id.0);
                Ok(ReplyMessage::ok(req.request_id, Bytes::new()))
            }
        }
        let rec = Arc::new(IdRecorder(Mutex::new(vec![])));
        let pool = Arc::new(ProtoPool::new().with(rec.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        for _ in 0..3 {
            gp.invoke_raw(1, Bytes::new()).unwrap();
        }
        let ids = rec.0.lock().clone();
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prefer_reorders_and_ban_removes() {
        struct TwoProtos(ProtocolId);
        impl ProtoObject for TwoProtos {
            fn protocol_id(&self) -> ProtocolId {
                self.0
            }
            fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
                true
            }
            fn invoke(
                &self,
                _p: &ProtoPool,
                _e: &ProtoEntry,
                req: &RequestMessage,
            ) -> Result<ReplyMessage, OrbError> {
                Ok(ReplyMessage::ok(req.request_id, Bytes::new()))
            }
        }
        let or = ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(0, 0),
            protocols: vec![
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://h:2"),
            ],
        };
        let pool = Arc::new(
            ProtoPool::new()
                .with(Arc::new(TwoProtos(ProtocolId::TCP)))
                .with(Arc::new(TwoProtos(ProtocolId::NEXUS_TCP))),
        );
        let gp = GlobalPointer::new(or, pool, Location::new(5, 1));

        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::TCP);
        gp.prefer(ProtocolId::NEXUS_TCP);
        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::NEXUS_TCP);
        // unknown preference is harmless
        gp.prefer(ProtocolId(999));
        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::NEXUS_TCP);

        assert_eq!(gp.ban(ProtocolId::NEXUS_TCP), 1);
        assert_eq!(gp.select().unwrap().proto.protocol_id(), ProtocolId::TCP);
        assert_eq!(gp.ban(ProtocolId::TCP), 1);
        assert!(gp.select().is_err(), "empty table selects nothing");
    }

    /// Proto that fails its first `fail_first` invocations with the produced
    /// error, then answers Ok.
    struct FailProto {
        id: ProtocolId,
        fail_first: u32,
        make_err: fn() -> OrbError,
        calls: AtomicU32,
    }

    impl FailProto {
        fn new(id: ProtocolId, fail_first: u32, make_err: fn() -> OrbError) -> Arc<Self> {
            Arc::new(Self { id, fail_first, make_err, calls: AtomicU32::new(0) })
        }
    }

    impl ProtoObject for FailProto {
        fn protocol_id(&self) -> ProtocolId {
            self.id
        }
        fn applicable(&self, _p: &ProtoPool, _c: &Location, _s: &Location, _e: &ProtoEntry) -> bool {
            true
        }
        fn invoke(
            &self,
            _p: &ProtoPool,
            _e: &ProtoEntry,
            req: &RequestMessage,
        ) -> Result<ReplyMessage, OrbError> {
            let n = self.calls.fetch_add(1, Ordering::Relaxed);
            if n < self.fail_first {
                Err((self.make_err)())
            } else {
                Ok(ReplyMessage::ok(req.request_id, req.body.clone()))
            }
        }
    }

    fn quiet(gp: &GlobalPointer) {
        gp.set_sleeper(Arc::new(ohpc_resilience::NoopSleeper));
    }

    #[test]
    fn retryable_failures_are_retried_within_budget() {
        use ohpc_transport::TransportError;
        let proto = FailProto::new(ProtocolId::TCP, 2, || {
            OrbError::Transport(TransportError::Closed)
        });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        quiet(&gp);
        let out = gp.invoke_raw(1, Bytes::from_static(b"r")).unwrap();
        assert_eq!(&out[..], b"r");
        assert_eq!(proto.calls.load(Ordering::Relaxed), 3, "two failures, then success");
    }

    #[test]
    fn budget_exhaustion_returns_the_last_error() {
        use ohpc_transport::TransportError;
        let proto = FailProto::new(ProtocolId::TCP, u32::MAX, || {
            OrbError::Transport(TransportError::Closed)
        });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        quiet(&gp);
        let err = gp.invoke_raw(1, Bytes::new()).unwrap_err();
        assert!(matches!(err, OrbError::Transport(TransportError::Closed)));
        assert_eq!(
            proto.calls.load(Ordering::Relaxed),
            gp.retry_policy().max_attempts,
            "budget spent exactly"
        );
    }

    #[test]
    fn ambiguous_failures_retry_only_under_an_idempotence_promise() {
        use ohpc_transport::TransportError;
        let proto = FailProto::new(ProtocolId::TCP, u32::MAX, || {
            OrbError::AmbiguousTransport(TransportError::Closed)
        });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        quiet(&gp);

        // Non-idempotent: the request may have executed; never re-send.
        let err = gp.invoke_raw(1, Bytes::new()).unwrap_err();
        assert!(matches!(err, OrbError::AmbiguousTransport(_)));
        assert_eq!(proto.calls.load(Ordering::Relaxed), 1, "no ambiguous re-send");

        // Idempotent: ambiguity is retryable up to the budget.
        proto.calls.store(0, Ordering::Relaxed);
        let err = gp.invoke_raw_idempotent(1, Bytes::new()).unwrap_err();
        assert!(matches!(err, OrbError::AmbiguousTransport(_)));
        assert_eq!(proto.calls.load(Ordering::Relaxed), gp.retry_policy().max_attempts);
    }

    #[test]
    fn permanent_transport_errors_are_not_retried() {
        use ohpc_transport::TransportError;
        let proto = FailProto::new(ProtocolId::TCP, u32::MAX, || {
            OrbError::Transport(TransportError::FrameTooLarge(9))
        });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        quiet(&gp);
        gp.invoke_raw(1, Bytes::new()).unwrap_err();
        assert_eq!(proto.calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn deadline_cuts_retries_short_on_the_virtual_clock() {
        use ohpc_resilience::{FnSleeper, HealthRegistry, RetryPolicy};
        use ohpc_telemetry::ManualClock;
        use ohpc_transport::TransportError;
        let proto = FailProto::new(ProtocolId::TCP, u32::MAX, || {
            OrbError::Transport(TransportError::Closed)
        });
        let pool = Arc::new(ProtoPool::new().with(proto.clone()));
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        let clock = Arc::new(ManualClock::new());
        gp.set_health_registry(Arc::new(HealthRegistry::with_clock(clock.clone())));
        gp.set_sleeper(Arc::new(FnSleeper::new({
            let clock = clock.clone();
            move |ns| clock.advance(ns)
        })));
        // Ten attempts allowed, but the deadline only fits the first backoff
        // (1 ms ± 20%): the second backoff (≈2 ms) would overrun it.
        gp.set_retry_policy(
            RetryPolicy::default().with_attempts(10).with_deadline_ns(1_500_000),
        );
        let err = gp.invoke_raw(1, Bytes::new()).unwrap_err();
        match err {
            OrbError::DeadlineExceeded { attempts, last } => {
                assert_eq!(attempts, 2);
                assert!(matches!(*last, OrbError::Transport(TransportError::Closed)));
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert_eq!(proto.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn transport_failures_open_the_breaker_and_fail_over_down_the_table() {
        use ohpc_resilience::BreakerState;
        use ohpc_transport::TransportError;
        let bad = FailProto::new(ProtocolId::TCP, u32::MAX, || {
            OrbError::Transport(TransportError::ConnectionRefused("down".into()))
        });
        let good = FailProto::new(ProtocolId::NEXUS_TCP, 0, || unreachable!());
        let or = ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(0, 0),
            protocols: vec![
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://h:2"),
            ],
        };
        let pool = Arc::new(ProtoPool::new().with(bad.clone()).with(good.clone()));
        let gp = GlobalPointer::new(or, pool, Location::new(5, 1));
        quiet(&gp);
        // Frozen clock: the open breaker's cooldown never elapses, so the
        // test cannot race a half-open probe.
        gp.set_health_registry(Arc::new(ohpc_resilience::HealthRegistry::with_clock(
            Arc::new(ohpc_telemetry::ManualClock::new()),
        )));

        // Default policy: threshold 3 failures, budget 4 attempts — the very
        // first invocation opens the preferred entry's breaker and its last
        // attempt fails over to the second table row.
        let out = gp.invoke_raw(1, Bytes::from_static(b"f")).unwrap();
        assert_eq!(&out[..], b"f");
        assert_eq!(bad.calls.load(Ordering::Relaxed), 3);
        assert_eq!(good.calls.load(Ordering::Relaxed), 1);

        let health = gp.health_registry();
        let key = crate::selection::health_key(&gp.object_reference().protocols[0]);
        assert_eq!(health.state(&key), BreakerState::Open);

        // While the breaker is open, traffic goes straight to the healthy
        // row: no further calls land on the broken proto.
        for _ in 0..5 {
            gp.invoke_raw(1, Bytes::new()).unwrap();
        }
        assert_eq!(bad.calls.load(Ordering::Relaxed), 3, "open breaker diverts traffic");
        assert_eq!(good.calls.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn noop_prefer_and_ban_leave_the_epoch_alone() {
        let (gp, _) = gp_with(vec![]);
        let epoch = gp.or_epoch();
        // Absent id: table untouched, no invalidation.
        gp.prefer(ProtocolId(999));
        assert_eq!(gp.or_epoch(), epoch, "prefer of an absent id must not bump");
        // Already preferred-first: reordering is a no-op.
        gp.prefer(ProtocolId::TCP);
        assert_eq!(gp.or_epoch(), epoch, "prefer that changes nothing must not bump");
        // Ban that removes zero rows: no invalidation.
        assert_eq!(gp.ban(ProtocolId(999)), 0);
        assert_eq!(gp.or_epoch(), epoch, "ban removing nothing must not bump");
        // A ban that does remove rows still bumps.
        assert_eq!(gp.ban(ProtocolId::TCP), 1);
        assert_eq!(gp.or_epoch(), epoch + 1);
    }

    #[test]
    fn registry_swap_bumps_the_epoch_and_invalidates_cached_selections() {
        use ohpc_resilience::BreakerState;
        let good_a = FailProto::new(ProtocolId::TCP, 0, || unreachable!());
        let good_b = FailProto::new(ProtocolId::NEXUS_TCP, 0, || unreachable!());
        let or = ObjectReference {
            object: ObjectId(1),
            type_name: "T".into(),
            location: Location::new(0, 0),
            protocols: vec![
                ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1"),
                ProtoEntry::endpoint(ProtocolId::NEXUS_TCP, "tcp://h:2"),
            ],
        };
        let pool = Arc::new(ProtoPool::new().with(good_a.clone()).with(good_b.clone()));
        let gp = GlobalPointer::new(or, pool, Location::new(5, 1));
        quiet(&gp);

        // Warm the cache on row 0 and prove it serves hits.
        for _ in 0..3 {
            gp.invoke_raw(1, Bytes::new()).unwrap();
        }
        let epoch_before = gp.or_epoch();

        // Build a replacement registry whose breaker for row 0 is already
        // open. If the swap did not invalidate, the cached selection would
        // keep routing to row 0 without ever consulting these breakers.
        let fresh = Arc::new(ohpc_resilience::HealthRegistry::with_clock(Arc::new(
            ohpc_telemetry::ManualClock::new(),
        )));
        let key0 = crate::selection::health_key(&gp.object_reference().protocols[0]);
        for _ in 0..3 {
            fresh.record_failure(&key0);
        }
        assert_eq!(fresh.state(&key0), BreakerState::Open);
        gp.set_health_registry(fresh);
        assert_eq!(gp.or_epoch(), epoch_before + 1, "swap must bump the selection epoch");

        let a_before = good_a.calls.load(Ordering::Relaxed);
        gp.invoke_raw(1, Bytes::new()).unwrap();
        assert_eq!(
            good_a.calls.load(Ordering::Relaxed),
            a_before,
            "post-swap traffic must respect the new registry's open breaker"
        );
        assert_eq!(good_b.calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn steady_selections_are_served_from_the_cache() {
        if !crate::selcache::cache_enabled() {
            return; // OHPC_SELECTION_CACHE=0 run: nothing to assert.
        }
        let (gp, proto) = gp_with((0..10).map(|_| ReplyStatus::Ok).collect());
        for _ in 0..10 {
            gp.invoke_raw(1, Bytes::new()).unwrap();
        }
        assert_eq!(proto.calls.load(Ordering::Relaxed), 10);
        // First attempt misses (fill), the rest hit.
        assert_eq!(gp.selection_cache_hits(), 9);
        // Rebind invalidates; the next attempt re-walks then hits again.
        gp.rebind(or_at(0));
        assert_eq!(gp.select_cached().unwrap(), 0);
        let hits = gp.selection_cache_hits();
        assert_eq!(gp.select_cached().unwrap(), 0);
        assert_eq!(gp.selection_cache_hits(), hits + 1);
    }

    #[test]
    fn no_protocol_in_pool_errors() {
        let pool = Arc::new(ProtoPool::new());
        let gp = GlobalPointer::new(or_at(0), pool, Location::new(5, 1));
        assert!(matches!(
            gp.invoke_raw(1, Bytes::new()).unwrap_err(),
            OrbError::NoApplicableProtocol { .. }
        ));
        assert!(gp.select().is_err());
    }
}
