//! End-to-end ORB tests: a served context, global pointers, typed stubs,
//! protocol selection, glue chains, and location forwarding — over the
//! in-process (shared-memory) fabric, real TCP, and the Nexus baseline.

use std::sync::Arc;

use bytes::Bytes;
use ohpc_netsim::Location;
use ohpc_orb::capability::{CallInfo, CapError, CapMeta};
use ohpc_orb::context::OrRow;
use ohpc_orb::{
    remote_interface, ApplicabilityRule, Capability, CapabilityRegistry, CapabilitySpec, Context,
    ContextId, Direction, GlobalPointer, GlueProto, OrbError, ProtoPool, ProtocolId,
    TransportProto,
};
use ohpc_transport::mem::MemFabric;
use ohpc_transport::tcp::{TcpAcceptor, TcpDialer};

remote_interface! {
    type_name = "Counter";
    trait CounterApi;
    skeleton CounterSkeleton;
    client CounterClient;
    fn add(n: i32) -> i32 = 1;
    fn get() -> i32 = 2;
    fn fail(msg: String) -> u32 = 3;
    fn echo_array(v: Vec<i32>) -> Vec<i32> = 4;
}

struct Counter(parking_lot::Mutex<i32>);

impl CounterApi for Counter {
    fn add(&self, n: i32) -> Result<i32, String> {
        let mut g = self.0.lock();
        *g += n;
        Ok(*g)
    }
    fn get(&self) -> Result<i32, String> {
        Ok(*self.0.lock())
    }
    fn fail(&self, msg: String) -> Result<u32, String> {
        Err(msg)
    }
    fn echo_array(&self, v: Vec<i32>) -> Result<Vec<i32>, String> {
        Ok(v)
    }
}

fn new_counter() -> Arc<CounterSkeleton<Counter>> {
    Arc::new(CounterSkeleton(Counter(parking_lot::Mutex::new(0))))
}

/// XOR-with-key capability with a key byte in its config, plus a deny budget.
struct XorCap {
    key: u8,
}

impl Capability for XorCap {
    fn name(&self) -> &str {
        "xor"
    }
    fn process(
        &self,
        _d: Direction,
        _c: &CallInfo,
        meta: &mut CapMeta,
        body: Bytes,
    ) -> Result<Bytes, CapError> {
        meta.set("k", vec![self.key]);
        Ok(body.iter().map(|b| b ^ self.key).collect::<Vec<_>>().into())
    }
    fn unprocess(
        &self,
        _d: Direction,
        _c: &CallInfo,
        meta: &CapMeta,
        body: Bytes,
    ) -> Result<Bytes, CapError> {
        let k = meta.require("k")?[0];
        if k != self.key {
            return Err(CapError::Failed("key mismatch".into()));
        }
        Ok(body.iter().map(|b| b ^ self.key).collect::<Vec<_>>().into())
    }
}

fn registry_with_xor() -> Arc<CapabilityRegistry> {
    let reg = CapabilityRegistry::new();
    reg.register("xor", |spec| {
        let key = spec.config.first().copied().unwrap_or(0x5A);
        Ok(Arc::new(XorCap { key }))
    });
    Arc::new(reg)
}

#[test]
fn mem_fabric_end_to_end_typed_stub() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(1), Location::new(0, 0), registry.clone());
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(fabric.listen()), ProtocolId::SHM);

    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::SHM)]).unwrap();
    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::SHM,
        ApplicabilityRule::SameMachineOnly,
        Arc::new(fabric),
    ))));
    let gp = GlobalPointer::new(or, pool, Location::new(0, 0));
    let client = CounterClient::new(gp);

    assert_eq!(client.add(5).unwrap(), 5);
    assert_eq!(client.add(-2).unwrap(), 3);
    assert_eq!(client.get().unwrap(), 3);
    assert_eq!(client.echo_array(vec![1, 2, 3]).unwrap(), vec![1, 2, 3]);
    assert_eq!(
        client.fail("nope".into()).unwrap_err(),
        OrbError::RemoteException("nope".into())
    );
    assert_eq!(client.gp().last_protocol().as_deref().unwrap(), "shm");

    ctx.shutdown();
}

#[test]
fn tcp_end_to_end() {
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(2), Location::new(1, 0), registry);
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(TcpAcceptor::bind("127.0.0.1:0").unwrap()), ProtocolId::TCP);

    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::TCP,
        ApplicabilityRule::Always,
        Arc::new(TcpDialer),
    ))));
    // Client on a different machine/LAN than the server.
    let gp = GlobalPointer::new(or, pool, Location::new(7, 3));
    let client = CounterClient::new(gp);
    assert_eq!(client.add(10).unwrap(), 10);
    assert_eq!(client.echo_array((0..1000).collect()).unwrap().len(), 1000);
    ctx.shutdown();
}

#[test]
fn glue_chain_end_to_end() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(3), Location::new(0, 0), registry.clone());
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);

    let specs = vec![CapabilitySpec::with_config("xor", vec![0x33u8])];
    let glue_id = ctx.add_glue(specs).unwrap();
    let or = ctx
        .make_or(id, &[OrRow::Glue { glue_id, inner: ProtocolId::TCP }])
        .unwrap();

    let pool = Arc::new(
        ProtoPool::new()
            .with(Arc::new(GlueProto::new(registry)))
            .with(Arc::new(TransportProto::new(
                ProtocolId::TCP,
                ApplicabilityRule::Always,
                Arc::new(fabric),
            ))),
    );
    let gp = GlobalPointer::new(or, pool, Location::new(9, 1));
    let client = CounterClient::new(gp);
    assert_eq!(client.add(4).unwrap(), 4);
    assert_eq!(client.get().unwrap(), 4);
    assert_eq!(client.gp().last_protocol().as_deref().unwrap(), "glue[xor]->tcp");
    ctx.shutdown();
}

#[test]
fn selection_prefers_glue_but_falls_back_by_applicability() {
    // OR prefers glue(xor over tcp) then plain tcp. Give the client a pool
    // whose registry does NOT know "xor": glue inapplicable → plain tcp.
    let fabric = MemFabric::new();
    let server_reg = registry_with_xor();
    let ctx = Context::new(ContextId(4), Location::new(0, 0), server_reg);
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);

    let glue_id = ctx.add_glue(vec![CapabilitySpec::new("xor")]).unwrap();
    let or = ctx
        .make_or(
            id,
            &[OrRow::Glue { glue_id, inner: ProtocolId::TCP }, OrRow::Plain(ProtocolId::TCP)],
        )
        .unwrap();

    let empty_registry = Arc::new(CapabilityRegistry::new());
    let pool = Arc::new(
        ProtoPool::new()
            .with(Arc::new(GlueProto::new(empty_registry)))
            .with(Arc::new(TransportProto::new(
                ProtocolId::TCP,
                ApplicabilityRule::Always,
                Arc::new(fabric),
            ))),
    );
    let gp = GlobalPointer::new(or, pool, Location::new(2, 2));
    let client = CounterClient::new(gp);
    assert_eq!(client.add(1).unwrap(), 1);
    assert_eq!(client.gp().last_protocol().as_deref().unwrap(), "tcp");
    ctx.shutdown();
}

#[test]
fn nexus_baseline_end_to_end() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(5), Location::new(0, 0), registry);
    let id = ctx.register(new_counter());
    ctx.serve_nexus(Box::new(fabric.listen()), ProtocolId::NEXUS_TCP);

    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::NEXUS_TCP)]).unwrap();
    let pool = Arc::new(ProtoPool::new().with(Arc::new(
        ohpc_orb::transport_proto::NexusProto::new(
            ProtocolId::NEXUS_TCP,
            ApplicabilityRule::Always,
            Arc::new(fabric),
        ),
    )));
    let gp = GlobalPointer::new(or, pool, Location::new(3, 1));
    let client = CounterClient::new(gp);
    assert_eq!(client.add(7).unwrap(), 7);
    assert_eq!(client.get().unwrap(), 7);
    ctx.shutdown();
}

#[test]
fn migration_forwarding_rebinds_transparently() {
    // Object starts in ctx_a, migrates to ctx_b; the client GP chases the
    // tombstone without the application noticing.
    let fabric = MemFabric::new();
    let registry = registry_with_xor();

    let ctx_a = Context::new(ContextId(10), Location::new(0, 0), registry.clone());
    let ctx_b = Context::new(ContextId(11), Location::new(1, 0), registry.clone());
    ctx_a.serve(Box::new(fabric.listen()), ProtocolId::TCP);
    ctx_b.serve(Box::new(fabric.listen()), ProtocolId::TCP);

    let skel = new_counter();
    let id = ctx_a.register(skel.clone());
    let or_a = ctx_a.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();

    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::TCP,
        ApplicabilityRule::Always,
        Arc::new(fabric),
    ))));
    let gp = GlobalPointer::new(or_a, pool, Location::new(5, 2));
    let client = CounterClient::new(gp);
    assert_eq!(client.add(3).unwrap(), 3);

    // Migrate: move the object, install a tombstone pointing at ctx_b.
    let obj = ctx_a.take_object(id).unwrap();
    ctx_b.adopt(id, obj);
    let or_b = ctx_b.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
    ctx_a.install_tombstone(id, or_b);

    // Same client keeps working; state travelled with the object.
    assert_eq!(client.add(4).unwrap(), 7);
    assert_eq!(client.gp().forwards_seen(), 1);
    assert_eq!(client.gp().object_reference().location, Location::new(1, 0));

    // Subsequent calls go straight to ctx_b (no more forwards).
    assert_eq!(client.get().unwrap(), 7);
    assert_eq!(client.gp().forwards_seen(), 1);

    ctx_a.shutdown();
    ctx_b.shutdown();
}

#[test]
fn oneway_invocations_dispatch_without_replies() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(20), Location::new(0, 0), registry.clone());
    let skel = new_counter();
    let id = ctx.register(skel);
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);
    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::TCP,
        ApplicabilityRule::Always,
        Arc::new(fabric),
    ))));
    let gp = GlobalPointer::new(or, pool, Location::new(3, 1));

    // Fire 10 one-way adds, then confirm with a two-way get on the SAME
    // connection — this also proves the reply stream stayed in sync (no
    // stray replies were queued for the one-ways).
    for _ in 0..10 {
        let mut w = ohpc_xdr::XdrWriter::new();
        use ohpc_xdr::XdrEncode;
        1i32.encode(&mut w);
        gp.invoke_oneway(1, &w).unwrap();
    }
    let client = CounterClient::new(gp);
    // One-ways race the following two-way on the same ordered connection,
    // so by the time get() is answered all adds have been dispatched.
    assert_eq!(client.get().unwrap(), 10);
    assert_eq!(ctx.requests_served(), 11);
    ctx.shutdown();
}

#[test]
fn oneway_through_glue_chain() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(21), Location::new(0, 0), registry.clone());
    let skel = new_counter();
    let id = ctx.register(skel);
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);
    let glue_id = ctx.add_glue(vec![CapabilitySpec::with_config("xor", vec![0x21u8])]).unwrap();
    let or = ctx
        .make_or(id, &[OrRow::Glue { glue_id, inner: ProtocolId::TCP }])
        .unwrap();
    let pool = Arc::new(
        ProtoPool::new()
            .with(Arc::new(GlueProto::new(registry)))
            .with(Arc::new(TransportProto::new(
                ProtocolId::TCP,
                ApplicabilityRule::Always,
                Arc::new(fabric),
            ))),
    );
    let gp = GlobalPointer::new(or, pool, Location::new(3, 1));
    for _ in 0..5 {
        let mut w = ohpc_xdr::XdrWriter::new();
        use ohpc_xdr::XdrEncode;
        2i32.encode(&mut w);
        gp.invoke_oneway(1, &w).unwrap();
    }
    let client = CounterClient::new(gp);
    assert_eq!(client.get().unwrap(), 10, "all glue-processed one-ways dispatched");
    ctx.shutdown();
}

#[test]
fn oneway_over_nexus_baseline() {
    // NexusProto one-ways are genuine one-way RSRs (no reply frame at all).
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(22), Location::new(0, 0), registry);
    let skel = new_counter();
    let id = ctx.register(skel);
    ctx.serve_nexus(Box::new(fabric.listen()), ProtocolId::NEXUS_TCP);
    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::NEXUS_TCP)]).unwrap();
    let pool = Arc::new(ProtoPool::new().with(Arc::new(
        ohpc_orb::transport_proto::NexusProto::new(
            ProtocolId::NEXUS_TCP,
            ApplicabilityRule::Always,
            Arc::new(fabric),
        ),
    )));
    let gp = GlobalPointer::new(or, pool, Location::new(3, 1));
    for _ in 0..4 {
        let mut w = ohpc_xdr::XdrWriter::new();
        use ohpc_xdr::XdrEncode;
        3i32.encode(&mut w);
        gp.invoke_oneway(1, &w).unwrap();
    }
    let client = CounterClient::new(gp);
    assert_eq!(client.get().unwrap(), 12);
    ctx.shutdown();
}

#[test]
fn client_survives_server_restart_via_reconnect() {
    // The cached connection dies with the first server instance; the next
    // invocation transparently re-dials the (re-bound) endpoint.
    let fabric = MemFabric::new();
    let registry = registry_with_xor();

    let ctx1 = Context::new(ContextId(30), Location::new(0, 0), registry.clone());
    let id1 = ctx1.register(new_counter());
    ctx1.serve(Box::new(fabric.listen_on(777)), ProtocolId::TCP);
    let or = ctx1.make_or(id1, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();

    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::TCP,
        ApplicabilityRule::Always,
        Arc::new(fabric.clone()),
    ))));
    let client = CounterClient::new(GlobalPointer::new(or, pool, Location::new(2, 1)));
    assert_eq!(client.add(1).unwrap(), 1);

    // "Restart": tear the whole context down, bring a fresh one up on the
    // SAME endpoint with an object under the same id.
    ctx1.shutdown();
    let ctx2 = Context::new(ContextId(30), Location::new(0, 0), registry);
    let skel2 = new_counter();
    ctx2.adopt(id1, skel2);
    ctx2.serve(Box::new(fabric.listen_on(777)), ProtocolId::TCP);

    // Same client object, same OR: the first attempt lands on the dead
    // cached connection. If the send itself fails, the frame provably never
    // left and the ORB transparently re-dials; if the send is accepted and
    // the reply never comes, the outcome is ambiguous — the dying server may
    // have executed the add — and a non-idempotent request is NOT re-sent.
    // Either way the dead connection is evicted, so the next call dials the
    // new listener. State reset to 0 — it is a restart, not a migration.
    match client.add(2) {
        Ok(v) => assert_eq!(v, 2),
        Err(e) => {
            assert!(e.is_transport(), "unexpected error after restart: {e}");
            assert_eq!(client.add(2).unwrap(), 2);
        }
    }
    ctx2.shutdown();
}

#[test]
fn context_crash_and_restart_preserves_objects() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(31), Location::new(0, 0), registry);
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(fabric.listen_on(778)), ProtocolId::TCP);
    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();

    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::TCP,
        ApplicabilityRule::Always,
        Arc::new(fabric.clone()),
    ))));
    let client = CounterClient::new(GlobalPointer::new(or, pool, Location::new(2, 1)));
    assert_eq!(client.add(1).unwrap(), 1);

    // Crash: every call now fails with a typed transport error — retries
    // find no listener to dial.
    ctx.crash();
    let err = client.add(10).unwrap_err();
    assert!(err.is_transport(), "crashed context must refuse cleanly: {err}");

    // Restart on the same endpoint: the object table survived the crash
    // (counter continues from 1, even though the failed add opened the
    // entry's breaker — an all-denied table still probes its best row).
    ctx.restart();
    ctx.serve(Box::new(fabric.listen_on(778)), ProtocolId::TCP);
    assert_eq!(client.add(2).unwrap(), 3);
    ctx.shutdown();
}

#[test]
fn or_restriction_denies_protocols() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(12), Location::new(0, 0), registry);
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(fabric.listen()), ProtocolId::SHM);
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);

    let or = ctx
        .make_or(id, &[OrRow::Plain(ProtocolId::SHM), OrRow::Plain(ProtocolId::TCP)])
        .unwrap();
    // Server hands an untrusted client a restricted OR without SHM.
    let restricted = or.restricted(|e| e.id != ProtocolId::SHM);

    let pool = Arc::new(
        ProtoPool::new()
            .with(Arc::new(TransportProto::new(
                ProtocolId::SHM,
                ApplicabilityRule::SameMachineOnly,
                Arc::new(fabric.clone()),
            )))
            .with(Arc::new(TransportProto::new(
                ProtocolId::TCP,
                ApplicabilityRule::Always,
                Arc::new(fabric),
            ))),
    );
    // Even a same-machine client cannot use SHM through the restricted OR.
    let gp = GlobalPointer::new(restricted, pool, Location::new(0, 0));
    let client = CounterClient::new(gp);
    assert_eq!(client.add(2).unwrap(), 2);
    assert_eq!(client.gp().last_protocol().as_deref().unwrap(), "tcp");
    ctx.shutdown();
}

#[test]
fn concurrent_clients_share_a_served_object() {
    let fabric = MemFabric::new();
    let registry = registry_with_xor();
    let ctx = Context::new(ContextId(13), Location::new(0, 0), registry);
    let id = ctx.register(new_counter());
    ctx.serve(Box::new(fabric.listen()), ProtocolId::TCP);
    let or = ctx.make_or(id, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let or = or.clone();
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
                    ProtocolId::TCP,
                    ApplicabilityRule::Always,
                    Arc::new(fabric),
                ))));
                let client =
                    CounterClient::new(GlobalPointer::new(or, pool, Location::new(8, 4)));
                for _ in 0..25 {
                    client.add(1).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Total adds = 4 threads * 25.
    let pool = Arc::new(ProtoPool::new().with(Arc::new(TransportProto::new(
        ProtocolId::TCP,
        ApplicabilityRule::Always,
        Arc::new(fabric),
    ))));
    let client = CounterClient::new(GlobalPointer::new(or, pool, Location::new(8, 4)));
    assert_eq!(client.get().unwrap(), 100);
    assert_eq!(ctx.requests_served(), 101);
    ctx.shutdown();
}
