//! Drift audit for [`ReplyStatus`]: wire tags, decode arms, and the
//! client-side error/retry mapping must move in lockstep when a variant is
//! added. The `assert_covers` match fails to **compile** when a variant is
//! added without extending `all_statuses`, and each test then fails loudly
//! on whichever axis was forgotten (tag assignment, decoder, or mapping).

use ohpc_orb::objref::{ObjectReference, ProtoEntry};
use ohpc_orb::{CapError, Location, ObjectId, OrbError, ProtocolId, ReplyStatus};
use ohpc_resilience::ErrorClass;
use ohpc_xdr::{XdrDecode, XdrEncode, XdrError, XdrReader, XdrWriter};

fn sample_or() -> ObjectReference {
    ObjectReference {
        object: ObjectId(7),
        type_name: "Matrix".into(),
        location: Location::new(3, 0),
        protocols: vec![ProtoEntry::endpoint(ProtocolId::TCP, "tcp://h:1")],
    }
}

/// One sample of every variant, in tag order.
fn all_statuses() -> Vec<ReplyStatus> {
    vec![
        ReplyStatus::Ok,
        ReplyStatus::Exception("kaboom".into()),
        ReplyStatus::Moved(Box::new(sample_or())),
        ReplyStatus::NoSuchObject,
        ReplyStatus::NoSuchMethod(4),
        ReplyStatus::CapabilityDenied("mac mismatch".into()),
        ReplyStatus::UnknownGlue(99),
        ReplyStatus::Overloaded("512 in flight".into()),
        ReplyStatus::DeadlineExpired("50 ms gone".into()),
    ]
}

/// Compile-time completeness guard: no wildcard arm, so adding a
/// `ReplyStatus` variant breaks this build until `all_statuses` (and with
/// it every assertion below) covers the newcomer.
fn assert_covers(s: &ReplyStatus) {
    match s {
        ReplyStatus::Ok
        | ReplyStatus::Exception(_)
        | ReplyStatus::Moved(_)
        | ReplyStatus::NoSuchObject
        | ReplyStatus::NoSuchMethod(_)
        | ReplyStatus::CapabilityDenied(_)
        | ReplyStatus::UnknownGlue(_)
        | ReplyStatus::Overloaded(_)
        | ReplyStatus::DeadlineExpired(_) => {}
    }
}

#[test]
fn wire_tags_are_unique_and_stable() {
    let all = all_statuses();
    let tags: Vec<u32> = all.iter().map(ReplyStatus::wire_tag).collect();
    let mut dedup = tags.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), all.len(), "duplicate wire tag in {tags:?}");
    // Tags are wire protocol: pin the published assignment so a reorder of
    // the enum (or a "helpful" renumbering) cannot slip through.
    assert_eq!(tags, (0..9).collect::<Vec<u32>>());
}

#[test]
fn every_variant_has_a_decode_arm() {
    for status in all_statuses() {
        assert_covers(&status);
        let mut w = XdrWriter::new();
        status.encode(&mut w);
        let bytes = w.finish();
        let mut r = XdrReader::new(&bytes);
        let back = ReplyStatus::decode(&mut r)
            .unwrap_or_else(|e| panic!("{status:?} did not decode: {e}"));
        assert_eq!(back, status);
        assert!(r.is_empty(), "{status:?} left {} bytes unread", r.remaining());
    }
}

#[test]
fn unknown_tag_is_an_explicit_decode_error() {
    let next_free = all_statuses().iter().map(ReplyStatus::wire_tag).max().unwrap() + 1;
    let mut w = XdrWriter::new();
    w.put_u32(next_free);
    let bytes = w.finish();
    let mut r = XdrReader::new(&bytes);
    assert_eq!(
        ReplyStatus::decode(&mut r).unwrap_err(),
        XdrError::InvalidDiscriminant(next_free),
        "an unassigned tag must fail decode, not alias an existing variant"
    );
}

#[test]
fn error_and_retry_mapping_is_exhaustive() {
    let object = ObjectId(42);
    for status in all_statuses() {
        let err = status.clone().into_orb_error(object);
        let class = err.retry_class();
        match &status {
            // Not errors: the invoke loop consumes these before conversion,
            // so the mapping degrades to a protocol violation, never a panic.
            ReplyStatus::Ok | ReplyStatus::Moved(_) => {
                assert!(matches!(err, OrbError::Protocol(_)), "{status:?} -> {err:?}");
            }
            ReplyStatus::Exception(_) => {
                assert!(matches!(err, OrbError::RemoteException(_)), "{err:?}");
                assert_eq!(class, ErrorClass::Permanent);
            }
            ReplyStatus::NoSuchObject => {
                assert_eq!(err, OrbError::NoSuchObject(object));
                assert_eq!(class, ErrorClass::Permanent);
            }
            ReplyStatus::NoSuchMethod(m) => {
                assert_eq!(err, OrbError::NoSuchMethod(*m));
                assert_eq!(class, ErrorClass::Permanent);
            }
            ReplyStatus::CapabilityDenied(_) => {
                assert!(matches!(err, OrbError::Capability(CapError::Denied(_))), "{err:?}");
                assert_eq!(class, ErrorClass::Permanent);
            }
            ReplyStatus::UnknownGlue(id) => {
                assert_eq!(err, OrbError::UnknownGlue(*id));
                assert_eq!(class, ErrorClass::Permanent);
            }
            ReplyStatus::Overloaded(_) => {
                assert!(matches!(err, OrbError::Overloaded(_)), "{err:?}");
                assert_eq!(class, ErrorClass::Retryable, "an admission shed never ran; retry is safe");
            }
            ReplyStatus::DeadlineExpired(_) => {
                assert!(matches!(err, OrbError::DeadlineExpired(_)), "{err:?}");
                assert_eq!(class, ErrorClass::Permanent, "a deadline shed only gets staler on retry");
            }
        }
    }
}
