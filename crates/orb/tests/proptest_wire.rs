//! Property tests on the ORB wire formats: requests, replies, object
//! references (with arbitrarily nested glue entries) always round-trip, and
//! hostile bytes never panic the decoders.

use bytes::Bytes;
use ohpc_orb::message::{CapWireMeta, GlueWire, ReplyMessage, ReplyStatus, RequestMessage};
use ohpc_orb::objref::{ObjectReference, ProtoData, ProtoEntry};
use ohpc_orb::{CapabilitySpec, Location, ObjectId, ProtocolId, RequestId};
use ohpc_xdr::{XdrDecode, XdrError, XdrReader, XdrWriter};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CapabilitySpec> {
    ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..32))
        .prop_map(|(name, cfg)| CapabilitySpec::with_config(name, cfg))
}

fn arb_entry() -> impl Strategy<Value = ProtoEntry> {
    let leaf = (0u16..200, "[ -~]{0,40}").prop_map(|(id, ep)| ProtoEntry {
        id: ProtocolId(id),
        data: ProtoData::Endpoint(ep),
    });
    leaf.prop_recursive(3, 8, 4, |inner| {
        (any::<u64>(), proptest::collection::vec(arb_spec(), 0..4), inner).prop_map(
            |(glue_id, caps, inner)| ProtoEntry {
                id: ProtocolId::GLUE,
                data: ProtoData::Glue { glue_id, caps, inner: Box::new(inner) },
            },
        )
    })
}

fn arb_or() -> impl Strategy<Value = ObjectReference> {
    (
        any::<u64>(),
        "[A-Za-z]{1,16}",
        (any::<u32>(), any::<u32>(), any::<u32>()),
        proptest::collection::vec(arb_entry(), 0..6),
    )
        .prop_map(|(oid, type_name, (m, l, s), protocols)| ObjectReference {
            object: ObjectId(oid),
            type_name,
            location: Location::with_site(m, l, s),
            protocols,
        })
}

fn arb_glue_wire() -> impl Strategy<Value = GlueWire> {
    (
        any::<u64>(),
        proptest::collection::vec(
            ("[a-z]{1,10}", proptest::collection::vec(any::<u8>(), 0..48)),
            0..5,
        ),
    )
        .prop_map(|(glue_id, caps)| GlueWire {
            glue_id,
            caps: caps
                .into_iter()
                .map(|(name, meta)| CapWireMeta { name, meta: Bytes::from(meta) })
                .collect(),
        })
}

fn arb_status() -> impl Strategy<Value = ReplyStatus> {
    prop_oneof![
        Just(ReplyStatus::Ok),
        "[ -~]{0,60}".prop_map(ReplyStatus::Exception),
        arb_or().prop_map(|o| ReplyStatus::Moved(Box::new(o))),
        Just(ReplyStatus::NoSuchObject),
        any::<u32>().prop_map(ReplyStatus::NoSuchMethod),
        "[ -~]{0,60}".prop_map(ReplyStatus::CapabilityDenied),
        any::<u64>().prop_map(ReplyStatus::UnknownGlue),
        "[ -~]{0,60}".prop_map(ReplyStatus::Overloaded),
        "[ -~]{0,60}".prop_map(ReplyStatus::DeadlineExpired),
    ]
}

proptest! {
    #[test]
    fn object_reference_roundtrip(or in arb_or()) {
        let bytes = or.to_bytes();
        let back = ObjectReference::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, or);
    }

    #[test]
    fn request_roundtrip(
        rid: u64, oid: u64, method: u32, oneway: bool,
        glue in proptest::option::of(arb_glue_wire()),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let req = RequestMessage {
            request_id: RequestId(rid),
            object: ObjectId(oid),
            method,
            oneway,
            glue,
            body: Bytes::from(body),
            trace: None,
        };
        let back = RequestMessage::from_frame(&req.to_frame()).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn reply_roundtrip(
        rid: u64,
        status in arb_status(),
        glue in proptest::option::of(arb_glue_wire()),
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let reply = ReplyMessage { request_id: RequestId(rid), status, glue, body: Bytes::from(body) };
        let back = ReplyMessage::from_frame(&reply.to_frame()).unwrap();
        prop_assert_eq!(back, reply);
    }

    /// Hostile input: random bytes and corrupted valid frames never panic.
    #[test]
    fn decoders_survive_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = RequestMessage::from_frame(&data);
        let _ = ReplyMessage::from_frame(&data);
        let _ = ObjectReference::from_bytes(&data);
    }

    #[test]
    fn decoders_survive_bitflips(
        or in arb_or(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = or.to_bytes();
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
            let _ = ObjectReference::from_bytes(&bytes); // must not panic
        }
    }

    /// `restricted` is a pure filter: keeps order, never invents entries.
    #[test]
    fn restriction_is_a_subsequence(or in arb_or(), keep_glue: bool) {
        let restricted = or.restricted(|e| (e.id == ProtocolId::GLUE) == keep_glue);
        prop_assert!(restricted.protocols.len() <= or.protocols.len());
        let mut it = or.protocols.iter();
        for kept in &restricted.protocols {
            prop_assert!(it.any(|e| e == kept), "restricted entry not in original order");
        }
    }

    /// Any tag outside the assigned range is an explicit decode error —
    /// never silently aliased onto an existing variant, never a panic.
    #[test]
    fn unknown_status_tag_is_rejected(tag in 9u32..=u32::MAX) {
        let mut w = XdrWriter::new();
        w.put_u32(tag);
        let bytes = w.finish();
        let mut r = XdrReader::new(&bytes);
        prop_assert_eq!(
            ReplyStatus::decode(&mut r).unwrap_err(),
            XdrError::InvalidDiscriminant(tag)
        );
    }

    /// Every strict prefix of a valid reply frame fails to decode. (Replies
    /// carry no trailing extension, so unlike requests there is no prefix
    /// that is also a legal frame.)
    #[test]
    fn truncated_reply_frames_are_errors(
        rid: u64,
        status in arb_status(),
        glue in proptest::option::of(arb_glue_wire()),
        body in proptest::collection::vec(any::<u8>(), 0..128),
        cut in any::<prop::sample::Index>(),
    ) {
        let reply = ReplyMessage { request_id: RequestId(rid), status, glue, body: Bytes::from(body) };
        let frame = reply.to_frame();
        let cut = cut.index(frame.len());
        prop_assert!(
            ReplyMessage::from_frame(&frame[..cut]).is_err(),
            "strict prefix of length {cut}/{} decoded successfully", frame.len()
        );
    }
}

/// A frame hand-built the way a pre-tracing encoder would emit it — base
/// fields only, no trailing extension — still decodes, with `trace: None`.
/// This is the compatibility promise of the trailing-extension scheme: old
/// bytes must stay valid forever.
#[test]
fn legacy_traceless_request_frame_decodes() {
    let mut w = XdrWriter::new();
    w.put_u64(11); // request_id
    w.put_u64(22); // object
    w.put_u32(3); // method slot
    w.put_bool(true); // oneway
    w.put_bool(false); // glue: absent
    w.put_opaque(&[0xDE, 0xAD, 0xBE, 0xEF]); // body
    let frame = w.finish();

    let req = RequestMessage::from_frame(&frame).expect("legacy frame must decode");
    assert_eq!(req.request_id, RequestId(11));
    assert_eq!(req.object, ObjectId(22));
    assert_eq!(req.method, 3);
    assert!(req.oneway);
    assert_eq!(req.glue, None);
    assert_eq!(&req.body[..], &[0xDE, 0xAD, 0xBE, 0xEF]);
    assert_eq!(req.trace, None, "absent extension must read as traceless, not an error");
}
