//! Microbenchmark of the flight-recorder hot path.
//!
//! Prints nanoseconds per operation for span open+close, instant events,
//! spans with attributes, and the disabled-recording fast path. Run with
//! `cargo run --release -p ohpc-telemetry --example trace_micro` when
//! touching the recorder; the end-to-end budget (`--max-tracing-overhead-pct`
//! on `bench_overhead_json`) is roughly nine records per fig3 call, so every
//! nanosecond here is ~9 ns per request.

use std::time::Instant;

fn main() {
    let ctx = ohpc_telemetry::TraceContext::new_root();
    let _scope = ohpc_telemetry::install(ctx);

    // Warm.
    for _ in 0..10_000 {
        let _s = ohpc_telemetry::trace_span("warm");
    }

    let n = 1_000_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        let _s = ohpc_telemetry::trace_span("work");
    }
    let span_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    let t0 = Instant::now();
    for _ in 0..n {
        ohpc_telemetry::trace_event("blip", &[("k", "v")]);
    }
    let event_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    let t0 = Instant::now();
    for i in 0..n {
        let mut s = ohpc_telemetry::trace_span_with("work", &[("attempt", "1")]);
        s.attr("x", if i % 2 == 0 { "a" } else { "b" });
    }
    let span_attr_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    ohpc_telemetry::set_trace_enabled(false);
    let t0 = Instant::now();
    for _ in 0..n {
        let _s = ohpc_telemetry::trace_span("work");
    }
    let off_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    ohpc_telemetry::set_trace_enabled(true);

    println!("span open+close: {span_ns:.1} ns");
    println!("event:           {event_ns:.1} ns");
    println!("span w/ attrs:   {span_attr_ns:.1} ns");
    println!("disabled span:   {off_ns:.1} ns");
}
