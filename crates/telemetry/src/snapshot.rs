//! Point-in-time metric snapshots and the prometheus-style text encoder.

use std::fmt::Write as _;

use crate::metrics::Exemplar;

/// A frozen copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds, sorted ascending (the implicit `+Inf` bucket is not
    /// listed here but is present as the last entry of `buckets`).
    pub bounds: Vec<u64>,
    /// Non-cumulative per-bucket counts; `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations; always equals `buckets.iter().sum()`.
    pub count: u64,
    /// The largest traced observation and its trace id, if any landed.
    pub exemplar: Option<Exemplar>,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One metric at snapshot time: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name, e.g. `orb_selection_total`.
    pub name: String,
    /// Canonically sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: Value,
}

/// A point-in-time copy of a registry, sorted by `(name, labels)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All samples, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

fn labels_match(sample: &Sample, labels: &[(&str, &str)]) -> bool {
    sample.labels.len() == labels.len()
        && labels
            .iter()
            .all(|(k, v)| sample.labels.iter().any(|(sk, sv)| sk == k && sv == v))
}

impl Snapshot {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The counter `name{labels}`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples.iter().find_map(|s| match &s.value {
            Value::Counter(v) if s.name == name && labels_match(s, labels) => Some(*v),
            _ => None,
        })
    }

    /// Sum of the counter `name` across every label set.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                Value::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// The gauge `name{labels}`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.samples.iter().find_map(|s| match &s.value {
            Value::Gauge(v) if s.name == name && labels_match(s, labels) => Some(*v),
            _ => None,
        })
    }

    /// The histogram `name{labels}`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.samples.iter().find_map(|s| match &s.value {
            Value::Histogram(h) if s.name == name && labels_match(s, labels) => Some(h),
            _ => None,
        })
    }

    /// Total observation count of the histogram `name` across every label set.
    pub fn histogram_count_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                Value::Histogram(h) => h.count,
                _ => 0,
            })
            .sum()
    }

    /// Encode in the prometheus text exposition format.
    ///
    /// Counters and gauges emit one line each; histograms emit cumulative
    /// `_bucket{le="..."}` lines (ending with `le="+Inf"`) plus `_sum` and
    /// `_count`. Output is deterministic: samples are already sorted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, fmt_labels(&s.labels, None), v);
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, fmt_labels(&s.labels, None), v);
                }
                Value::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bucket) in h.buckets.iter().enumerate() {
                        cumulative += bucket;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            fmt_labels(&s.labels, Some(&le)),
                            cumulative
                        );
                    }
                    let _ =
                        writeln!(out, "{}_sum{} {}", s.name, fmt_labels(&s.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        fmt_labels(&s.labels, None),
                        h.count
                    );
                    if let Some(ex) = &h.exemplar {
                        // OpenMetrics-flavored exemplar comment: links the
                        // max observation back to its causal trace.
                        let _ = writeln!(
                            out,
                            "# {}_max{} {} trace_id=\"{:032x}\"",
                            s.name,
                            fmt_labels(&s.labels, None),
                            ex.value,
                            ex.trace_id
                        );
                    }
                }
            }
        }
        out
    }
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn fmt_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", le));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn text_encoder_counters_and_gauges() {
        let r = Registry::new();
        r.counter("reqs_total", &[("proto", "tcp")]).add(7);
        r.gauge("depth", &[]).set(-2);
        let text = r.snapshot().to_text();
        assert!(text.contains("reqs_total{proto=\"tcp\"} 7\n"), "{text}");
        assert!(text.contains("depth -2\n"), "{text}");
    }

    #[test]
    fn text_encoder_histogram_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("lat_ns", &[("op", "x")], &[10, 20]);
        h.observe(5);
        h.observe(15);
        h.observe(99);
        let text = r.snapshot().to_text();
        assert!(text.contains("lat_ns_bucket{op=\"x\",le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{op=\"x\",le=\"20\"} 2\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{op=\"x\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_sum{op=\"x\"} 119\n"), "{text}");
        assert!(text.contains("lat_ns_count{op=\"x\"} 3\n"), "{text}");
    }

    #[test]
    fn text_encoder_emits_exemplar_comment() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("lat_ns", &[], &[10]);
        h.observe_traced(7, 0xFACE);
        let text = r.snapshot().to_text();
        assert!(
            text.contains("# lat_ns_max 7 trace_id=\"0000000000000000000000000000face\""),
            "{text}"
        );
    }

    #[test]
    fn text_encoder_escapes_label_values() {
        let r = Registry::new();
        r.counter("weird", &[("msg", "a\"b\\c\nd")]).inc();
        let text = r.snapshot().to_text();
        assert!(text.contains("weird{msg=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter("z_total", &[]).inc();
        r.counter("a_total", &[("l", "2")]).inc();
        r.counter("a_total", &[("l", "1")]).inc();
        let text = r.snapshot().to_text();
        let z = text.find("z_total").expect("z_total present");
        let a1 = text.find("a_total{l=\"1\"}").expect("a_total l=1 present");
        let a2 = text.find("a_total{l=\"2\"}").expect("a_total l=2 present");
        assert!(a1 < a2 && a2 < z, "{text}");
        assert_eq!(text, r.snapshot().to_text());
    }

    #[test]
    fn lookup_helpers() {
        let r = Registry::new();
        r.counter("c", &[("a", "1")]).add(2);
        r.counter("c", &[("a", "2")]).add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c", &[("a", "1")]), Some(2));
        assert_eq!(snap.counter("c", &[("a", "3")]), None);
        assert_eq!(snap.counter_total("c"), 5);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
    }
}
