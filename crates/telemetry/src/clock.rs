//! Pluggable time sources for spans.
//!
//! Production code uses [`MonotonicClock`] (backed by [`std::time::Instant`]);
//! deterministic tests use [`ManualClock`], and `ohpc-netsim`'s `VirtualClock`
//! implements [`Clock`] so simulated time drives span durations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source measured in nanoseconds from an arbitrary origin.
///
/// Only differences between two readings are meaningful. Implementations must
/// be cheap (a span takes two readings) and must never go backwards.
pub trait Clock: Send + Sync {
    /// Current reading in nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock-independent monotonic clock backed by [`std::time::Instant`].
///
/// The origin is the moment the clock was constructed, so readings stay small
/// and `u64` nanoseconds last ~584 years — overflow is not a practical concern.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Create a clock whose origin is "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate instead of panicking if the elapsed time ever exceeded
        // u64::MAX nanoseconds (it cannot in practice).
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests.
///
/// Shared freely via `Clone` — all clones observe the same underlying time.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Create a clock reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `delta_ns` nanoseconds.
    pub fn advance(&self, delta_ns: u64) {
        self.nanos.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute reading.
    pub fn set(&self, now_ns: u64) {
        self.nanos.store(now_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(100);
        c.advance(23);
        assert_eq!(c.now_ns(), 123);
        c.set(5);
        assert_eq!(c.now_ns(), 5);
    }
}
