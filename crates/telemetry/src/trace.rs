//! Causal tracing: wire-propagated context, child spans, and the always-on
//! flight recorder.
//!
//! A [`TraceContext`] is minted at the GP call site, rides the request frame
//! as a trailing versioned extension, and is re-installed on every thread
//! that works on the request (retry loop, demux waiter, server handler
//! thread). Each unit of work — an attempt, a capability transform, a
//! transport send, a skeleton dispatch — opens a [`TraceSpan`] that becomes a
//! child of the installed context and is recorded into the process-global
//! [`TraceBuffer`] when it closes.
//!
//! The buffer is the *flight recorder* (DESIGN.md §13): a fixed-size ring of
//! packed, heap-free slots, always on. Recording costs one `fetch_add` plus
//! a bounded inline copy behind a per-slot `try_write` — no allocation, and
//! a contended slot drops the record (and counts the drop) rather than ever
//! blocking the hot path. Snapshots unpack the slots into [`SpanRecord`]s
//! and are exposed over the ORB through the introspection object's
//! `dump_traces` method, and dumped to `results/` when a request exhausts
//! its retry budget.
//!
//! Timestamps come from [`Registry::global`]'s pluggable clock, so traces
//! recorded under netsim's virtual clock are deterministic.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::registry::Registry;

/// Upper bound on the serialized baggage a context will carry, in bytes
/// (keys + values). Entries past the budget are dropped and counted into
/// `trace_baggage_dropped_total`.
pub const BAGGAGE_BUDGET_BYTES: usize = 512;

/// Span/attribute copy bounds: names and attribute strings longer than this
/// are truncated so a record is always a small, bounded copy.
const NAME_BUDGET: usize = 64;
const ATTR_VALUE_BUDGET: usize = 128;
const ATTRS_PER_SPAN: usize = 8;

/// Inline payload bytes per slot (name + packed attributes). Sized so one
/// worst-case attribute (64-byte key, 128-byte value) still fits behind a
/// full-length name; attributes past the arena are dropped, never spilled
/// to the heap.
const SLOT_BYTES: usize = 288;

/// Flight-recorder capacity (spans). Power of two so the ring index is a
/// mask. 1k packed slots of ~350 bytes keeps the recorder near 360 KiB —
/// small enough to stay L2-resident, so the per-record slot write is warm
/// rather than a string of cold-line store misses, and still roughly a
/// hundred request chains of history for a post-mortem dump.
const RING_CAPACITY: usize = 1024;

/// Most `results/` dumps a process will write (bounds disk use under a chaos
/// loop that fails every request).
const MAX_AUTO_DUMPS: u64 = 8;

/// Propagated identity of one causal trace.
///
/// `trace_id` names the end-to-end request story; `span_id` names the
/// current unit of work; `parent_span_id` is 0 for a root. `baggage` carries
/// small key/value pairs along the wire under [`BAGGAGE_BUDGET_BYTES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace identity, stable across retries, failovers and forwards.
    pub trace_id: u128,
    /// The current span.
    pub span_id: u64,
    /// The parent span (0 = root).
    pub parent_span_id: u64,
    /// Key/value pairs propagated with the request, bounded by
    /// [`BAGGAGE_BUDGET_BYTES`].
    pub baggage: Vec<(String, String)>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Process-unique id stream: a splitmix64 walk over a thread-local counter
/// under a per-thread random seed (wall-clock nanoseconds mixed with a
/// process-global thread ordinal), so minting an id is lock-free and touches
/// no shared cache line on the hot path. Uniqueness is what matters — within
/// a thread the walk never repeats (splitmix64 is a bijection), across
/// threads and processes the 64-bit seeds make a collision negligible.
/// Determinism of *timestamps* (not ids) is what the netsim tests rely on.
fn next_id() -> u64 {
    use std::cell::Cell;
    static THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        // (seed, counter); seed 0 means "not yet initialised".
        static ID_STATE: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    }
    ID_STATE.with(|s| {
        let (mut seed, mut n) = s.get();
        if seed == 0 {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let ord = THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
            seed = splitmix64(t ^ ord.rotate_left(32)).max(1);
        }
        loop {
            n = n.wrapping_add(1);
            let id = splitmix64(seed ^ n);
            if id != 0 {
                s.set((seed, n));
                return id;
            }
        }
    })
}

impl TraceContext {
    /// Mints a fresh root context (new trace, new span, no parent).
    pub fn new_root() -> Self {
        let hi = next_id();
        let lo = next_id();
        Self {
            trace_id: (u128::from(hi) << 64) | u128::from(lo),
            span_id: next_id(),
            parent_span_id: 0,
            baggage: Vec::new(),
        }
    }

    /// Derives a child context: same trace, fresh span, parented on `self`.
    /// Baggage is inherited (it propagates with the request).
    pub fn child(&self) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_span_id: self.span_id,
            baggage: self.baggage.clone(),
        }
    }

    /// Serialized size of the current baggage in bytes (keys + values).
    pub fn baggage_bytes(&self) -> usize {
        self.baggage.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// Adds a baggage entry if it fits the byte budget; a dropped entry is
    /// counted into `trace_baggage_dropped_total` and the call returns
    /// `false`.
    pub fn try_add_baggage(&mut self, key: &str, value: &str) -> bool {
        if self.baggage_bytes() + key.len() + value.len() > BAGGAGE_BUDGET_BYTES {
            crate::registry::inc("trace_baggage_dropped_total", &[]);
            return false;
        }
        self.baggage.push((key.to_string(), value.to_string()));
        true
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// Timestamp from the registry clock through a per-thread cache keyed on the
/// registry's clock epoch: one relaxed load plus a dyn call on the hit path,
/// no read lock. A `set_clock` bumps the epoch and the next timestamp on
/// each thread refreshes its cached handle.
fn fast_now_ns() -> u64 {
    type CachedClock = (u64, std::sync::Arc<dyn crate::clock::Clock>);
    thread_local! {
        static CLOCK: RefCell<Option<CachedClock>> = const { RefCell::new(None) };
    }
    let reg = Registry::global();
    let epoch = reg.clock_epoch();
    CLOCK.with(|c| {
        let mut c = c.borrow_mut();
        match &*c {
            Some((e, clock)) if *e == epoch => clock.now_ns(),
            _ => {
                let clock = reg.clock();
                let now = clock.now_ns();
                *c = Some((epoch, clock));
                now
            }
        }
    })
}

/// The context installed on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Trace id of the installed context (`None` off-trace). Cheaper than
/// [`current`] when only the id is needed (exemplars, fault tags).
pub fn current_trace_id() -> Option<u128> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.trace_id))
}

/// Drop guard restoring the previously installed context.
///
/// Returned by [`install`]; keep it alive for the duration of the work that
/// should run under the context.
#[must_use = "dropping the scope immediately uninstalls the context"]
pub struct TraceScope {
    prev: Option<TraceContext>,
}

impl std::fmt::Debug for TraceScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceScope").finish()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Installs `ctx` as this thread's current context until the returned scope
/// drops (the previous context, if any, is restored).
pub fn install(ctx: TraceContext) -> TraceScope {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    TraceScope { prev }
}

/// One recorded span in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span_id: u64,
    /// Bounded operation name (≤ 64 bytes).
    pub name: String,
    /// Start timestamp from the registry clock, nanoseconds.
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for instant events.
    pub end_ns: u64,
    /// Bounded attribute list (≤ 8 entries, values ≤ 128 bytes).
    pub attrs: Vec<(String, String)>,
}

/// Borrowing truncation to a char boundary at or below `budget`.
fn truncate_str(s: &str, budget: usize) -> &str {
    if s.len() <= budget {
        return s;
    }
    let mut end = budget;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    s.get(..end).unwrap_or_default()
}

/// A span in packed wire-less form: ids plus an inline byte arena holding
/// the name and the attributes (`[klen][vlen][key][val]` per attr). This is
/// what lives in the ring and on a [`TraceSpan`]'s stack frame — recording
/// is a bounded memcpy, never an allocation.
#[derive(Clone, Copy)]
struct PackedSpan {
    trace_id: u128,
    span_id: u64,
    parent_span_id: u64,
    start_ns: u64,
    end_ns: u64,
    name_len: u8,
    n_attrs: u8,
    len: u16,
    buf: [u8; SLOT_BYTES],
}

impl PackedSpan {
    fn new(trace_id: u128, span_id: u64, parent_span_id: u64, name: &str, start_ns: u64) -> Self {
        let mut p = Self {
            trace_id,
            span_id,
            parent_span_id,
            start_ns,
            end_ns: start_ns,
            name_len: 0,
            n_attrs: 0,
            len: 0,
            buf: [0; SLOT_BYTES],
        };
        let name = truncate_str(name, NAME_BUDGET).as_bytes();
        if let Some(dst) = p.buf.get_mut(..name.len()) {
            dst.copy_from_slice(name);
            p.name_len = name.len() as u8;
            p.len = name.len() as u16;
        }
        p
    }

    /// Appends an attribute; silently dropped once the attr count or the
    /// arena is exhausted (bounded by construction).
    fn push_attr(&mut self, key: &str, value: &str) {
        if usize::from(self.n_attrs) >= ATTRS_PER_SPAN {
            return;
        }
        let key = truncate_str(key, NAME_BUDGET).as_bytes();
        let value = truncate_str(value, ATTR_VALUE_BUDGET).as_bytes();
        let at = usize::from(self.len);
        let need = 2 + key.len() + value.len();
        let Some(dst) = self.buf.get_mut(at..at + need) else { return };
        let [klen_b, vlen_b, body @ ..] = dst else { return };
        *klen_b = key.len() as u8;
        *vlen_b = value.len() as u8;
        if let Some(kdst) = body.get_mut(..key.len()) {
            kdst.copy_from_slice(key);
        }
        if let Some(vdst) = body.get_mut(key.len()..) {
            vdst.copy_from_slice(value);
        }
        self.len += need as u16;
        self.n_attrs += 1;
    }

    fn push_attrs(&mut self, attrs: &[(&str, &str)]) {
        for (k, v) in attrs {
            self.push_attr(k, v);
        }
    }

    /// Expands the packed form back into an owned [`SpanRecord`]
    /// (snapshot-time only — this side allocates).
    fn unpack(&self) -> SpanRecord {
        let name = self
            .buf
            .get(..usize::from(self.name_len))
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .unwrap_or_default();
        let mut attrs = Vec::with_capacity(usize::from(self.n_attrs));
        let mut at = usize::from(self.name_len);
        for _ in 0..self.n_attrs {
            let Some(&[klen, vlen]) = self.buf.get(at..at + 2) else { break };
            at += 2;
            let (klen, vlen) = (usize::from(klen), usize::from(vlen));
            let Some(kb) = self.buf.get(at..at + klen) else { break };
            let key = String::from_utf8_lossy(kb).into_owned();
            at += klen;
            let Some(vb) = self.buf.get(at..at + vlen) else { break };
            let value = String::from_utf8_lossy(vb).into_owned();
            at += vlen;
            attrs.push((key, value));
        }
        SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span_id: self.parent_span_id,
            name,
            start_ns: self.start_ns,
            end_ns: self.end_ns,
            attrs,
        }
    }
}

/// Global kill switch for span recording (contexts still propagate).
///
/// Tracing is **always on** by default; the switch exists so the overhead
/// benchmark can measure a tracing-off baseline and so an operator can shed
/// the (small) recording cost under extreme load.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is span recording on?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off (default on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The fixed-size span ring: the always-on flight recorder.
///
/// Writers claim a slot with one `fetch_add` and memcpy their packed record
/// behind a per-slot `try_write` — no heap traffic on the record path; a
/// slot contended at that instant drops the record (counted in
/// [`dropped`](Self::dropped)) so recording can never block. Readers take
/// per-slot read locks; a snapshot unpacks into owned [`SpanRecord`]s.
pub struct TraceBuffer {
    slots: Vec<RwLock<Option<PackedSpan>>>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceBuffer {
    /// A buffer with `capacity` slots (rounded up to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| RwLock::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The process-global flight recorder every [`TraceSpan`] records into.
    pub fn global() -> &'static TraceBuffer {
        static GLOBAL: OnceLock<TraceBuffer> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceBuffer::with_capacity(RING_CAPACITY))
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans recorded since construction (overwritten ones included).
    /// Derived from the write cursor so the record path pays for one shared
    /// counter, not two.
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed).saturating_sub(self.dropped.load(Ordering::Relaxed))
    }

    /// Records dropped because their slot was contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one owned span (converts to the packed form; tests and
    /// external recorders). The hot paths record packed spans directly.
    pub fn record(&self, rec: SpanRecord) {
        let mut p =
            PackedSpan::new(rec.trace_id, rec.span_id, rec.parent_span_id, &rec.name, rec.start_ns);
        p.end_ns = rec.end_ns;
        for (k, v) in &rec.attrs {
            p.push_attr(k, v);
        }
        self.record_packed(&p);
    }

    /// Records one packed span. Never blocks: a contended slot drops the
    /// record.
    ///
    /// Threads claim ring indices in blocks of `capacity / 64` (1 for small
    /// buffers, so tests see exact FIFO slot reuse) and walk their block
    /// thread-locally, so the shared cursor line moves between cores once
    /// per block rather than once per span. A thread's unfilled tail merely
    /// leaves those slots holding their previous records a little longer.
    fn record_packed(&self, rec: &PackedSpan) {
        use std::cell::Cell;
        thread_local! {
            // (buffer identity, next unclaimed index, end of claimed block)
            static BLOCK: Cell<(usize, u64, u64)> = const { Cell::new((0, 0, 0)) };
        }
        let me = self as *const Self as usize;
        let claimed = BLOCK.with(|b| {
            let (owner, next, end) = b.get();
            if owner == me && next < end {
                b.set((me, next + 1, end));
                next
            } else {
                let block = (self.slots.len() as u64 / 64).max(1);
                let base = self.cursor.fetch_add(block, Ordering::Relaxed);
                b.set((me, base + 1, base + block));
                base
            }
        });
        let idx = (claimed as usize) % self.slots.len();
        let Some(slot) = self.slots.get(idx) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match slot.try_write() {
            Ok(mut guard) => {
                *guard = Some(*rec);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of every live record, ordered by
    /// `(start_ns, trace_id, span_id)` so output is deterministic under a
    /// deterministic clock.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| match s.try_read() {
                Ok(guard) => guard.as_ref().map(PackedSpan::unpack),
                Err(_) => None,
            })
            .collect();
        out.sort_by(|a, b| {
            (a.start_ns, a.trace_id, a.span_id).cmp(&(b.start_ns, b.trace_id, b.span_id))
        });
        out
    }

    /// Every live record belonging to `trace_id`, in snapshot order.
    pub fn spans_of(&self, trace_id: u128) -> Vec<SpanRecord> {
        self.snapshot().into_iter().filter(|r| r.trace_id == trace_id).collect()
    }

    /// Renders the snapshot as deterministic text, one span per line:
    ///
    /// ```text
    /// trace=<032x> span=<016x> parent=<016x> start=<ns> end=<ns> <name> k=v ...
    /// ```
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in self.snapshot() {
            let _ = write!(
                out,
                "trace={:032x} span={:016x} parent={:016x} start={} end={} {}",
                r.trace_id, r.span_id, r.parent_span_id, r.start_ns, r.end_ns, r.name
            );
            for (k, v) in &r.attrs {
                let _ = write!(out, " {}={}", k, v.replace(['\n', ' '], "_"));
            }
            out.push('\n');
        }
        out
    }

    /// Empties the ring (tests).
    pub fn clear(&self) {
        for slot in &self.slots {
            if let Ok(mut guard) = slot.try_write() {
                *guard = None;
            }
        }
    }
}

/// Records an instant event (zero-duration span) under the installed
/// context; a no-op when no context is installed or recording is off.
pub fn trace_event(name: &str, attrs: &[(&str, &str)]) {
    if !enabled() {
        return;
    }
    let Some((trace_id, span_id)) =
        CURRENT.with(|c| c.borrow().as_ref().map(|ctx| (ctx.trace_id, ctx.span_id)))
    else {
        return;
    };
    let now = fast_now_ns();
    let mut p = PackedSpan::new(trace_id, next_id(), span_id, name, now);
    p.push_attrs(attrs);
    TraceBuffer::global().record_packed(&p);
}

/// A timed child span: derives a child of the installed context, installs
/// it for the guard's lifetime (so nested spans parent correctly), and
/// records into the flight recorder on drop.
///
/// When no context is installed (or recording is off) the guard is inert —
/// callers do not need to branch.
#[must_use = "a span records when the guard drops"]
pub struct TraceSpan {
    rec: Option<PackedSpan>,
    /// `(span_id, parent_span_id)` of the installed context before this span
    /// re-pointed it at itself; restored on drop. The full context never
    /// moves — a child span shares the trace id and baggage, so opening one
    /// only swings the two span ids in place.
    restore: Option<(u64, u64)>,
}

impl std::fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpan").field("active", &self.rec.is_some()).finish()
    }
}

impl TraceSpan {
    /// Adds an attribute to the span (bounded; ignored on inert spans).
    pub fn attr(&mut self, key: &str, value: &str) {
        if let Some(rec) = &mut self.rec {
            rec.push_attr(key, value);
        }
    }

    /// Is this span actually recording?
    pub fn is_active(&self) -> bool {
        self.rec.is_some()
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        // End time is taken before the parent span ids are restored, so a
        // span's duration never includes its own teardown.
        if let Some(rec) = self.rec.as_mut() {
            rec.end_ns = fast_now_ns();
            TraceBuffer::global().record_packed(rec);
        }
        if let Some((span_id, parent_span_id)) = self.restore.take() {
            CURRENT.with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    ctx.span_id = span_id;
                    ctx.parent_span_id = parent_span_id;
                }
            });
        }
    }
}

/// Opens a child span of the installed context (inert off-trace).
pub fn trace_span(name: &str) -> TraceSpan {
    trace_span_with(name, &[])
}

/// [`trace_span`] with initial attributes.
pub fn trace_span_with(name: &str, attrs: &[(&str, &str)]) -> TraceSpan {
    if !enabled() {
        return TraceSpan { rec: None, restore: None };
    }
    let span_id = next_id();
    // One TLS visit: read the ids and re-point the installed context at the
    // new span, so nested spans parent correctly. Trace id and baggage are
    // shared with the parent and stay where they are.
    let ids = CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let ctx = cur.as_mut()?;
        let prev = (ctx.span_id, ctx.parent_span_id);
        ctx.parent_span_id = ctx.span_id;
        ctx.span_id = span_id;
        Some((ctx.trace_id, prev))
    });
    let Some((trace_id, prev)) = ids else {
        return TraceSpan { rec: None, restore: None };
    };
    let mut rec = PackedSpan::new(trace_id, span_id, prev.0, name, fast_now_ns());
    rec.push_attrs(attrs);
    TraceSpan { rec: Some(rec), restore: Some(prev) }
}

static DUMPS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Dumps the flight recorder to `results/trace-dump-<n>-<reason>.txt`.
///
/// Best-effort and bounded: at most [`MAX_AUTO_DUMPS`] files per process,
/// disabled entirely with `OHPC_TRACE_DUMP=0`. Returns the path written.
/// Called automatically when a request exhausts its retry budget; tests and
/// chaos harnesses may call it on failure.
pub fn dump_to_results(reason: &str) -> Option<std::path::PathBuf> {
    if std::env::var("OHPC_TRACE_DUMP").is_ok_and(|v| v == "0") {
        return None;
    }
    let n = DUMPS_WRITTEN.fetch_add(1, Ordering::Relaxed);
    if n >= MAX_AUTO_DUMPS {
        return None;
    }
    let safe: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '-' })
        .take(48)
        .collect();
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("trace-dump-{n}-{safe}.txt"));
    let text = TraceBuffer::global().snapshot_text();
    match std::fs::write(&path, text) {
        Ok(()) => {
            crate::registry::inc("trace_dumps_written_total", &[]);
            Some(path)
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::{Arc, Mutex, MutexGuard};

    /// Serializes tests that read or write process-global recording state
    /// (the enabled flag, the global clock, the global ring).
    fn global_state_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn root_and_child_share_a_trace() {
        let root = TraceContext::new_root();
        assert_ne!(root.trace_id, 0);
        assert_ne!(root.span_id, 0);
        assert_eq!(root.parent_span_id, 0);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(child.parent_span_id, root.span_id);
    }

    #[test]
    fn ids_are_unique_across_many_mints() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(TraceContext::new_root().trace_id));
        }
    }

    #[test]
    fn baggage_budget_is_enforced() {
        let mut ctx = TraceContext::new_root();
        assert!(ctx.try_add_baggage("tenant", "blue"));
        let huge = "x".repeat(BAGGAGE_BUDGET_BYTES);
        assert!(!ctx.try_add_baggage("k", &huge), "over-budget entry dropped");
        assert_eq!(ctx.baggage.len(), 1);
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        assert!(current().is_none());
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        {
            let _sa = install(a.clone());
            assert_eq!(current().map(|c| c.trace_id), Some(a.trace_id));
            {
                let _sb = install(b.clone());
                assert_eq!(current().map(|c| c.trace_id), Some(b.trace_id));
            }
            assert_eq!(current().map(|c| c.trace_id), Some(a.trace_id));
        }
        assert!(current().is_none());
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest() {
        let buf = TraceBuffer::with_capacity(4);
        for i in 0..10u64 {
            buf.record(SpanRecord {
                trace_id: 1,
                span_id: i + 1,
                parent_span_id: 0,
                name: format!("s{i}"),
                start_ns: i,
                end_ns: i,
                attrs: vec![],
            });
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(buf.recorded(), 10);
        // Only the newest four survive the wrap.
        let names: Vec<&str> = snap.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["s6", "s7", "s8", "s9"]);
    }

    #[test]
    fn spans_record_under_an_installed_context_only() {
        let _g = global_state_guard();
        // No context installed on this thread: the guard must be inert.
        // (No recorded()-delta assertion — sibling tests record concurrently.)
        let orphan = trace_span("orphan");
        assert!(!orphan.is_active(), "span without an installed context is inert");
        drop(orphan);

        let ctx = TraceContext::new_root();
        let scope = install(ctx.clone());
        {
            let mut span = trace_span("work");
            assert!(span.is_active());
            span.attr("k", "v");
        }
        trace_event("blip", &[("reason", "test")]);
        drop(scope);
        let spans = TraceBuffer::global().spans_of(ctx.trace_id);
        assert_eq!(spans.len(), 2, "{spans:?}");
        assert!(spans.iter().any(|s| s.name == "work" && s.parent_span_id == ctx.span_id));
        assert!(spans.iter().any(|s| s.name == "blip"));
    }

    #[test]
    fn nested_spans_parent_on_each_other() {
        let _g = global_state_guard();
        let ctx = TraceContext::new_root();
        let _scope = install(ctx.clone());
        let outer_id;
        {
            let outer = trace_span("outer");
            outer_id = current().map(|c| c.span_id).unwrap_or(0);
            assert!(outer.is_active());
            {
                let _inner = trace_span("inner");
            }
        }
        let spans = TraceBuffer::global().spans_of(ctx.trace_id);
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner recorded");
        assert_eq!(inner.parent_span_id, outer_id, "inner parents on outer");
    }

    #[test]
    fn timestamps_come_from_the_registry_clock() {
        let _g = global_state_guard();
        // The global clock may be swapped by other tests; use a local
        // ManualClock and restore the old one after.
        let old = Registry::global().clock();
        let clock = Arc::new(ManualClock::new());
        clock.set(5_000);
        Registry::global().set_clock(clock.clone());
        let ctx = TraceContext::new_root();
        let _scope = install(ctx.clone());
        {
            let _span = trace_span("timed");
            clock.advance(250);
        }
        Registry::global().set_clock(old);
        let spans = TraceBuffer::global().spans_of(ctx.trace_id);
        let timed = spans.iter().find(|s| s.name == "timed").expect("recorded");
        assert_eq!(timed.start_ns, 5_000);
        assert_eq!(timed.end_ns, 5_250);
    }

    #[test]
    fn disabled_recording_is_a_cheap_no_op() {
        let _g = global_state_guard();
        set_enabled(false);
        let ctx = TraceContext::new_root();
        let _scope = install(ctx.clone());
        drop(trace_span("dark"));
        trace_event("dark-event", &[]);
        set_enabled(true);
        assert!(TraceBuffer::global().spans_of(ctx.trace_id).is_empty());
    }

    #[test]
    fn snapshot_text_is_deterministic_and_parseable() {
        let buf = TraceBuffer::with_capacity(8);
        buf.record(SpanRecord {
            trace_id: 0xABCD,
            span_id: 2,
            parent_span_id: 1,
            name: "hop".into(),
            start_ns: 10,
            end_ns: 20,
            attrs: vec![("protocol".into(), "tcp with spaces".into())],
        });
        let text = buf.snapshot_text();
        assert_eq!(text, buf.snapshot_text());
        assert!(text.contains("trace=0000000000000000000000000000abcd"), "{text}");
        assert!(text.contains("span=0000000000000002"), "{text}");
        assert!(text.contains("parent=0000000000000001"), "{text}");
        assert!(text.contains("hop protocol=tcp_with_spaces"), "{text}");
    }

    #[test]
    fn names_and_attrs_are_bounded_copies() {
        let _g = global_state_guard();
        let ctx = TraceContext::new_root();
        let _scope = install(ctx.clone());
        let long = "n".repeat(500);
        {
            let mut span = trace_span(&long);
            span.attr(&long, &long);
        }
        let spans = TraceBuffer::global().spans_of(ctx.trace_id);
        let s = spans.first().expect("recorded");
        assert_eq!(s.name.len(), 64);
        let (k, v) = s.attrs.first().expect("attr kept");
        assert_eq!(k.len(), 64);
        assert_eq!(v.len(), 128);
    }
}
