//! # ohpc-telemetry — metrics and spans for the Open HPC++ request path
//!
//! A zero-dependency observability substrate: wait-free atomic instruments
//! ([`Counter`], [`Gauge`], [`Histogram`]), a lock-light [`Registry`] keyed by
//! `(name, labels)`, point-in-time [`Snapshot`]s with a prometheus-style text
//! encoder, and drop-guard [`Span`]s timed by a pluggable [`Clock`].
//!
//! Design rules (see DESIGN.md §7):
//!
//! - **Recording never blocks and never panics.** Instruments are plain
//!   atomics; the registry lock is only taken to resolve a handle, and kind
//!   collisions degrade to detached instruments instead of errors.
//! - **Zero dependencies.** Every other workspace crate may depend on
//!   telemetry, so telemetry depends on nothing (it deliberately uses
//!   `std::sync::RwLock`, not `parking_lot`).
//! - **Time is pluggable.** [`MonotonicClock`] for production,
//!   [`ManualClock`] for unit tests, and `ohpc-netsim`'s `VirtualClock`
//!   implements [`Clock`] so simulated time drives spans deterministically.
//!
//! Workspace instrumentation records into [`Registry::global`]; the ORB's
//! introspection object (`ohpc-orb::introspect`) serves that registry's
//! snapshot as a `RemoteObject`, so metrics travel over the ORB itself.
//!
//! ```
//! use ohpc_telemetry::{Registry, ManualClock};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let clock = Arc::new(ManualClock::new());
//! registry.set_clock(clock.clone());
//!
//! registry.counter("orb_selection_total", &[("protocol", "tcp")]).inc();
//! let span = registry.span("orb_request_ns", &[]);
//! clock.advance(1_500);
//! assert_eq!(span.finish(), 1_500);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter_total("orb_selection_total"), 1);
//! assert!(snap.to_text().contains("orb_selection_total{protocol=\"tcp\"} 1"));
//! ```

#![warn(missing_docs)]

mod clock;
mod metrics;
mod registry;
mod snapshot;
mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{default_latency_bounds_ns, Counter, Exemplar, Gauge, Histogram};
pub use registry::{add, counter, gauge, histogram, inc, observe_ns, span, Registry, Span};
pub use snapshot::{HistogramSnapshot, Sample, Snapshot, Value};
pub use trace::{
    current, current_trace_id, dump_to_results, enabled as trace_enabled, install,
    set_enabled as set_trace_enabled, trace_event, trace_span, trace_span_with, SpanRecord,
    TraceBuffer, TraceContext, TraceScope, TraceSpan, BAGGAGE_BUDGET_BYTES,
};
