//! The three metric instruments: counters, gauges, and fixed-bucket histograms.
//!
//! Every instrument is a plain bundle of atomics — recording is wait-free and
//! never allocates, which keeps instrumentation safe to leave on in the hot
//! path. Snapshots read the same atomics with relaxed loads; consistency
//! guarantees are documented per method.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, open connections, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtract `delta`.
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (typically nanoseconds
/// or bytes).
///
/// Bucket `i` counts observations `v` with `v <= bounds[i]` and
/// `v > bounds[i-1]`; one extra implicit `+Inf` bucket catches everything
/// above the last bound. Bounds are sorted and deduplicated at construction,
/// so any slice is a valid argument.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last one is `+Inf`.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    /// Exemplar linkage: the largest traced observation so far and the trace
    /// it belonged to, so a latency regression points at a reconstructable
    /// causal trace. Updated with a `fetch_max` race that tolerates ties.
    max_v: AtomicU64,
    max_trace_hi: AtomicU64,
    max_trace_lo: AtomicU64,
}

/// The exemplar a histogram keeps: its maximum traced observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (same unit as the histogram).
    pub value: u64,
    /// Trace id of the request that produced it.
    pub trace_id: u128,
}

/// Default latency bounds in nanoseconds: 1µs → 10s in 1-2.5-5 steps.
///
/// Wide enough for an in-process capability transform (~µs) and a simulated
/// WAN round trip (~ms–s) on the same scale.
pub fn default_latency_bounds_ns() -> Vec<u64> {
    const US: u64 = 1_000;
    const MS: u64 = 1_000_000;
    vec![
        US,
        2 * US + US / 2,
        5 * US,
        10 * US,
        25 * US,
        50 * US,
        100 * US,
        250 * US,
        500 * US,
        MS,
        2 * MS + MS / 2,
        5 * MS,
        10 * MS,
        25 * MS,
        50 * MS,
        100 * MS,
        250 * MS,
        500 * MS,
        1_000 * MS,
        2_500 * MS,
        5_000 * MS,
        10_000 * MS,
    ]
}

impl Histogram {
    /// Create a histogram with the given upper bounds (sorted + deduplicated).
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            max_v: AtomicU64::new(0),
            max_trace_hi: AtomicU64::new(0),
            max_trace_lo: AtomicU64::new(0),
        }
    }

    /// Create a histogram with [`default_latency_bounds_ns`].
    pub fn with_default_bounds() -> Self {
        Self::new(&default_latency_bounds_ns())
    }

    /// The configured upper bounds (exclusive of the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// [`observe`](Self::observe) plus exemplar linkage: when `v` is the
    /// largest observation this histogram has seen, remember `trace_id` so
    /// the max bucket points back at the causal trace that filled it.
    ///
    /// The max check and the trace store are separate atomics; two racing
    /// maxima may interleave their trace halves, which is acceptable
    /// imprecision for a diagnostic pointer (the value itself stays exact).
    pub fn observe_traced(&self, v: u64, trace_id: u128) {
        self.observe(v);
        let prev = self.max_v.fetch_max(v, Ordering::Relaxed);
        if v >= prev {
            self.max_trace_hi.store((trace_id >> 64) as u64, Ordering::Relaxed);
            self.max_trace_lo.store(trace_id as u64, Ordering::Relaxed);
        }
    }

    /// The current exemplar: the largest traced observation and its trace.
    /// `None` until some traced observation lands.
    pub fn exemplar(&self) -> Option<Exemplar> {
        let hi = self.max_trace_hi.load(Ordering::Relaxed);
        let lo = self.max_trace_lo.load(Ordering::Relaxed);
        let trace_id = (u128::from(hi) << 64) | u128::from(lo);
        if trace_id == 0 {
            return None;
        }
        Some(Exemplar { value: self.max_v.load(Ordering::Relaxed), trace_id })
    }

    /// Per-bucket counts (non-cumulative; last entry is the `+Inf` bucket).
    ///
    /// The returned vector is a single pass over the bucket atomics, so a
    /// count derived by summing it is exactly the count of observations whose
    /// bucket increment was visible at snapshot time — the invariant the
    /// snapshot-consistency test relies on.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Total number of observations (sum of all bucket counts).
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.sub(2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bounds 10, 20, 30 → buckets (..=10], (10..=20], (20..=30], (30..).
        let h = Histogram::new(&[10, 20, 30]);
        h.observe(0); // first bucket
        h.observe(10); // value == bound lands IN that bucket (le semantics)
        h.observe(11); // second bucket
        h.observe(20); // second bucket
        h.observe(30); // third bucket
        h.observe(31); // +Inf
        h.observe(u64::MAX / 2); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 10 + 11 + 20 + 30 + 31 + u64::MAX / 2);
    }

    #[test]
    fn histogram_sanitizes_bounds() {
        let h = Histogram::new(&[30, 10, 20, 10]);
        assert_eq!(h.bounds(), &[10, 20, 30]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn histogram_empty_bounds_is_all_inf() {
        let h = Histogram::new(&[]);
        h.observe(42);
        assert_eq!(h.bucket_counts(), vec![1]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 42);
    }

    #[test]
    fn exemplar_tracks_the_max_traced_observation() {
        let h = Histogram::new(&[10, 100]);
        assert_eq!(h.exemplar(), None, "no traced observation yet");
        h.observe(1_000_000); // untraced observations never set the exemplar
        assert_eq!(h.exemplar(), None);
        h.observe_traced(50, 0xAAAA);
        assert_eq!(h.exemplar(), Some(Exemplar { value: 50, trace_id: 0xAAAA }));
        h.observe_traced(2_000_000, 0xBBBB);
        assert_eq!(h.exemplar(), Some(Exemplar { value: 2_000_000, trace_id: 0xBBBB }));
        h.observe_traced(10, 0xCCCC); // smaller: exemplar unchanged
        assert_eq!(h.exemplar().map(|e| e.trace_id), Some(0xBBBB));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn default_bounds_are_strictly_increasing() {
        let b = default_latency_bounds_ns();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().expect("non-empty"), 1_000);
        assert_eq!(*b.last().expect("non-empty"), 10_000_000_000);
    }
}
