//! The metric registry and span guard.
//!
//! A [`Registry`] maps `(name, sorted label set)` keys to shared instrument
//! handles. Lookups take a read lock on the fast path (the instrument already
//! exists) and a write lock only on first registration; recording through a
//! returned handle touches no lock at all. The registry deliberately uses
//! `std::sync::RwLock` rather than `parking_lot` so the telemetry crate stays
//! outside the workspace lock-order analysis surface and has zero
//! dependencies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{default_latency_bounds_ns, Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Sample, Snapshot, Value};

/// A metric identity: name plus a canonically sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct MetricKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        Self { name: name.to_string(), labels }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A concurrent registry of named metrics.
///
/// Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram) are
/// `Arc`-shared: callers should look a handle up once and keep it, not
/// re-resolve per event. Registering the same `(name, labels)` twice returns
/// the same underlying instrument. Registering a name under a *different*
/// instrument kind never panics — it returns a detached instrument that
/// records into the void, so a naming collision degrades to lost data rather
/// than a crash (telemetry must never take the hot path down).
pub struct Registry {
    metrics: RwLock<HashMap<MetricKey, Metric>>,
    clock: RwLock<Arc<dyn Clock>>,
    clock_epoch: AtomicU64,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = read_lock(&self.metrics).len();
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

/// Read-lock helper that survives poisoning: a panicked writer can only have
/// been mid-`insert` on an unrelated key, and lost telemetry beats a
/// propagated panic.
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Create an empty registry with a [`MonotonicClock`].
    pub fn new() -> Self {
        Self {
            metrics: RwLock::new(HashMap::new()),
            clock: RwLock::new(Arc::new(MonotonicClock::new())),
            clock_epoch: AtomicU64::new(0),
        }
    }

    /// The process-wide registry that workspace instrumentation records into.
    ///
    /// All `Context`s in a process share it, so the introspection object's
    /// snapshot is a *per-process* view (see DESIGN.md §7).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Replace the clock used by [`span`](Registry::span).
    ///
    /// `netsim` installs its `VirtualClock` here so span durations are
    /// simulated-time deterministic.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *write_lock(&self.clock) = clock;
        self.clock_epoch.fetch_add(1, Ordering::Release);
    }

    /// The currently installed clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        read_lock(&self.clock).clone()
    }

    /// Current time from the installed clock, without cloning it — the
    /// cheap read the trace recorder uses on every span open/close.
    pub fn now_ns(&self) -> u64 {
        read_lock(&self.clock).now_ns()
    }

    /// Bumped on every [`set_clock`](Registry::set_clock); lets per-thread
    /// clock caches detect a swap with one relaxed load instead of taking
    /// the clock read lock on every timestamp.
    pub fn clock_epoch(&self) -> u64 {
        self.clock_epoch.load(Ordering::Acquire)
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        if let Some(Metric::Counter(c)) = read_lock(&self.metrics).get(&key) {
            return c.clone();
        }
        let mut map = write_lock(&self.metrics);
        match map.entry(key).or_insert_with(|| Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c.clone(),
            // Kind collision: hand back a detached instrument, never panic.
            _ => Arc::new(Counter::new()),
        }
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        if let Some(Metric::Gauge(g)) = read_lock(&self.metrics).get(&key) {
            return g.clone();
        }
        let mut map = write_lock(&self.metrics);
        match map.entry(key).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g.clone(),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Get or register the histogram `name{labels}` with the default latency
    /// bounds (see [`default_latency_bounds_ns`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with_bounds(name, labels, &default_latency_bounds_ns())
    }

    /// Get or register the histogram `name{labels}` with explicit bounds.
    ///
    /// Bounds only matter on first registration; later calls return the
    /// existing instrument regardless of the bounds argument.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        if let Some(Metric::Histogram(h)) = read_lock(&self.metrics).get(&key) {
            return h.clone();
        }
        let mut map = write_lock(&self.metrics);
        match map.entry(key).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds)))) {
            Metric::Histogram(h) => h.clone(),
            _ => Arc::new(Histogram::new(bounds)),
        }
    }

    /// Start a span that records its duration into the histogram
    /// `name{labels}` when finished or dropped.
    pub fn span(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        Span::start(self.histogram(name, labels), self.clock())
    }

    /// A point-in-time copy of every registered metric.
    ///
    /// Each instrument is read once; counters and histogram buckets are
    /// internally consistent per instrument (a histogram's count equals the
    /// sum of its snapshotted buckets by construction), while cross-metric
    /// skew is bounded by the duration of the snapshot loop.
    pub fn snapshot(&self) -> Snapshot {
        let map = read_lock(&self.metrics);
        let mut samples: Vec<Sample> = map
            .iter()
            .map(|(key, metric)| Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => Value::Counter(c.get()),
                    Metric::Gauge(g) => Value::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let buckets = h.bucket_counts();
                        let count = buckets.iter().sum();
                        Value::Histogram(HistogramSnapshot {
                            bounds: h.bounds().to_vec(),
                            buckets,
                            sum: h.sum(),
                            count,
                            exemplar: h.exemplar(),
                        })
                    }
                },
            })
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { samples }
    }
}

/// A drop-guard timing span.
///
/// Created by [`Registry::span`]; observes the elapsed clock time into its
/// histogram exactly once, either at [`finish`](Span::finish) or on drop.
pub struct Span {
    hist: Option<Arc<Histogram>>,
    clock: Arc<dyn Clock>,
    start_ns: u64,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("start_ns", &self.start_ns)
            .field("elapsed_ns", &self.elapsed_ns())
            .finish()
    }
}

impl Span {
    /// Start a span against an explicit histogram and clock.
    pub fn start(hist: Arc<Histogram>, clock: Arc<dyn Clock>) -> Self {
        let start_ns = clock.now_ns();
        Self { hist: Some(hist), clock, start_ns }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Finish now and return the recorded duration in nanoseconds.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_ns();
        if let Some(h) = self.hist.take() {
            observe_maybe_traced(&h, elapsed);
        }
        elapsed
    }

    /// Abandon the span without recording anything.
    pub fn cancel(mut self) {
        self.hist = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            observe_maybe_traced(&h, self.clock.now_ns().saturating_sub(self.start_ns));
        }
    }
}

/// Observes `v`, linking the installed trace as the histogram's exemplar
/// when one is present (so the max bucket points at a causal trace).
fn observe_maybe_traced(h: &Histogram, v: u64) {
    match crate::trace::current_trace_id() {
        Some(trace_id) => h.observe_traced(v, trace_id),
        None => h.observe(v),
    }
}

/// Global-registry shorthand for [`Registry::counter`].
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    Registry::global().counter(name, labels)
}

/// Global-registry shorthand for [`Registry::gauge`].
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    Registry::global().gauge(name, labels)
}

/// Global-registry shorthand for [`Registry::histogram`].
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    Registry::global().histogram(name, labels)
}

/// Global-registry shorthand for [`Registry::span`].
pub fn span(name: &str, labels: &[(&str, &str)]) -> Span {
    Registry::global().span(name, labels)
}

/// One-shot observation of a duration already measured by the caller
/// (exemplar-linked to the installed trace, like a [`Span`]).
pub fn observe_ns(name: &str, labels: &[(&str, &str)], ns: u64) {
    observe_maybe_traced(&Registry::global().histogram(name, labels), ns);
}

// Counter-bump without holding a handle: cheap enough for cold paths
// (rebinds, tombstone hops) where callers have nowhere to cache the Arc.
/// Global-registry shorthand: bump `name{labels}` by one.
pub fn inc(name: &str, labels: &[(&str, &str)]) {
    Registry::global().counter(name, labels).inc();
}

/// Global-registry shorthand: add `delta` to `name{labels}`.
pub fn add(name: &str, labels: &[(&str, &str)], delta: u64) {
    Registry::global().counter(name, labels).add(delta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::thread;

    #[test]
    fn same_key_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("hits", &[("proto", "tcp")]);
        let b = r.counter("hits", &[("proto", "tcp")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        // label order is canonicalized
        let c = r.counter("multi", &[("a", "1"), ("b", "2")]);
        let d = r.counter("multi", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn different_labels_are_distinct() {
        let r = Registry::new();
        let a = r.counter("hits", &[("proto", "tcp")]);
        let b = r.counter("hits", &[("proto", "shm")]);
        a.add(3);
        assert_eq!(b.get(), 0);
        assert_eq!(r.snapshot().counter_total("hits"), 3);
    }

    #[test]
    fn kind_collision_returns_detached_instrument() {
        let r = Registry::new();
        let c = r.counter("thing", &[]);
        c.inc();
        // Same name as a gauge: detached, does not clobber, does not panic.
        let g = r.gauge("thing", &[]);
        g.set(99);
        assert_eq!(r.snapshot().counter("thing", &[]), Some(1));
        assert_eq!(r.snapshot().gauge("thing", &[]), None);
    }

    #[test]
    fn span_with_manual_clock_is_deterministic() {
        let r = Registry::new();
        let clock = Arc::new(ManualClock::new());
        r.set_clock(clock.clone());
        let span = r.span("op_ns", &[("op", "test")]);
        clock.advance(1234);
        assert_eq!(span.finish(), 1234);
        let snap = r.snapshot();
        let h = snap.histogram("op_ns", &[("op", "test")]).expect("histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1234);
    }

    #[test]
    fn span_records_on_drop_and_cancel_suppresses() {
        let r = Registry::new();
        let clock = Arc::new(ManualClock::new());
        r.set_clock(clock.clone());
        {
            let _span = r.span("drop_ns", &[]);
            clock.advance(10);
        }
        r.span("drop_ns", &[]).cancel();
        let snap = r.snapshot();
        let h = snap.histogram("drop_ns", &[]).expect("histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 10);
    }

    #[test]
    fn snapshot_consistent_under_concurrent_writers() {
        let r = Arc::new(Registry::new());
        let hist = r.histogram_with_bounds("load_ns", &[], &[10, 100, 1000]);
        let counter = r.counter("load_total", &[]);
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 5_000;
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let hist = hist.clone();
                let counter = counter.clone();
                thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        hist.observe((w as u64 * 7 + i) % 2000);
                        counter.inc();
                    }
                })
            })
            .collect();
        // Snapshot while writers are live: count must equal the bucket sum
        // (both derived from the same per-bucket loads), and repeated
        // snapshots must be monotone.
        let mut last_count = 0u64;
        for _ in 0..50 {
            let snap = r.snapshot();
            let h = snap.histogram("load_ns", &[]).expect("histogram");
            assert_eq!(h.count, h.buckets.iter().sum::<u64>());
            assert!(h.count >= last_count);
            last_count = h.count;
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        let snap = r.snapshot();
        let h = snap.histogram("load_ns", &[]).expect("histogram");
        let total = (WRITERS as u64) * PER_WRITER;
        assert_eq!(h.count, total);
        assert_eq!(snap.counter("load_total", &[]), Some(total));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a: *const Registry = Registry::global();
        let b: *const Registry = Registry::global();
        assert_eq!(a, b);
        inc("telemetry_selftest_total", &[]);
        add("telemetry_selftest_total", &[], 2);
        assert!(
            Registry::global().snapshot().counter_total("telemetry_selftest_total") >= 3
        );
    }
}
