//! Object migration and load balancing for Open HPC++.
//!
//! The paper: "Open HPC++ provides a facility for objects to migrate from
//! one context to another" and migrates "when the load on the server's
//! machine increases beyond a high-water mark". This crate supplies both
//! halves:
//!
//! * [`Migratable`] + [`MigrationManager`] — state serialization, re-homing
//!   an object under its original identity, and CORBA-style tombstones so
//!   existing Global Pointers rebind transparently;
//! * [`LoadBalancer`] — the high/low-water-mark policy over
//!   [`ohpc_netsim::load::LoadTracker`] samples, producing deterministic
//!   migration plans the experiment harness executes.
//!
//! Consistency note: migration snapshots the object's state at
//! [`Migratable::serialize_state`] time. Requests that race the migration
//! window on the old context may observe (and mutate) the stale copy before
//! the tombstone lands; Open HPC++ (1999) had the same property. Quiesce the
//! object first if that matters.

#![warn(missing_docs)]

mod balancer;
mod manager;

pub use balancer::{LoadBalancer, MigrationPlan, WaterMarks};
pub use manager::{Migratable, MigrateError, MigrationManager, ObjectFactory};
