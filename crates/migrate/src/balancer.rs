//! High/low-water-mark load balancing policy.

use ohpc_netsim::load::LoadTracker;
use ohpc_netsim::{MachineId, SimTime};
use ohpc_orb::ObjectId;

/// Policy thresholds, in load-score units (see
/// [`ohpc_netsim::load::LoadSample::score`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterMarks {
    /// Migrate away when a machine's score exceeds this.
    pub high: f64,
    /// Only machines below this score accept migrated objects.
    pub low: f64,
}

impl WaterMarks {
    /// Standard 2.0 / 1.0 marks.
    pub fn default_marks() -> Self {
        Self { high: 2.0, low: 1.0 }
    }
}

/// One planned migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Object to move.
    pub object: ObjectId,
    /// Overloaded source machine.
    pub from: MachineId,
    /// Underloaded destination machine.
    pub to: MachineId,
}

/// The paper's load-balancing policy: when a machine crosses the high-water
/// mark, move one hosted object to the least-loaded machine that sits below
/// the low-water mark. Deterministic given the same samples (machines are
/// scanned in ascending id order; the lowest-id object moves first).
pub struct LoadBalancer {
    marks: WaterMarks,
    tracker: LoadTracker,
}

impl LoadBalancer {
    /// Builds a balancer over `tracker`.
    pub fn new(marks: WaterMarks, tracker: LoadTracker) -> Self {
        assert!(marks.high > marks.low, "high mark must exceed low mark");
        Self { marks, tracker }
    }

    /// The underlying tracker (for feeding request samples).
    pub fn tracker(&self) -> &LoadTracker {
        &self.tracker
    }

    /// Plans migrations for the current instant. `hosting` lists, per
    /// machine, the migratable objects it currently hosts.
    pub fn plan(
        &self,
        now: SimTime,
        hosting: &[(MachineId, Vec<ObjectId>)],
    ) -> Vec<MigrationPlan> {
        let mut scores: Vec<(MachineId, f64, Vec<ObjectId>)> = hosting
            .iter()
            .map(|(m, objs)| {
                let mut objs = objs.clone();
                objs.sort();
                (*m, self.tracker.sample(*m, now).score(), objs)
            })
            .collect();
        scores.sort_by_key(|(m, _, _)| *m);

        let mut plans = Vec::new();
        // Copy of scores we update as we assign, so one pass cannot overload
        // a single destination with every evacuated object.
        let mut projected: Vec<(MachineId, f64)> =
            scores.iter().map(|(m, s, _)| (*m, *s)).collect();

        for (machine, score, objs) in &scores {
            let Some(&evacuee) = objs.first() else { continue };
            if *score <= self.marks.high {
                continue;
            }
            // least-loaded destination below the low mark, by projected score
            let dest = projected
                .iter()
                .filter(|(m, s)| m != machine && *s < self.marks.low)
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(m, _)| *m);
            let Some(dest) = dest else { continue };
            plans.push(MigrationPlan { object: evacuee, from: *machine, to: dest });
            // The moved object brings some load with it; bump the projection
            // so repeated planning rounds spread objects out.
            if let Some(p) = projected.iter_mut().find(|(m, _)| *m == dest) {
                p.1 += 0.5;
            }
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LoadBalancer, SimTime) {
        (LoadBalancer::new(WaterMarks::default_marks(), LoadTracker::new()), SimTime::ZERO)
    }

    fn m(n: u32) -> MachineId {
        MachineId(n)
    }

    fn o(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn idle_cluster_plans_nothing() {
        let (lb, now) = setup();
        let plans = lb.plan(now, &[(m(0), vec![o(1)]), (m(1), vec![])]);
        assert!(plans.is_empty());
    }

    #[test]
    fn overloaded_machine_evacuates_to_least_loaded() {
        let (lb, now) = setup();
        lb.tracker().set_background(m(0), 5.0); // over high mark
        lb.tracker().set_background(m(1), 0.8);
        lb.tracker().set_background(m(2), 0.2); // least loaded
        let plans = lb.plan(now, &[(m(0), vec![o(7)]), (m(1), vec![]), (m(2), vec![])]);
        assert_eq!(plans, vec![MigrationPlan { object: o(7), from: m(0), to: m(2) }]);
    }

    #[test]
    fn no_destination_below_low_mark_means_no_plan() {
        let (lb, now) = setup();
        lb.tracker().set_background(m(0), 5.0);
        lb.tracker().set_background(m(1), 1.5); // above low mark
        let plans = lb.plan(now, &[(m(0), vec![o(1)]), (m(1), vec![])]);
        assert!(plans.is_empty());
    }

    #[test]
    fn machine_without_objects_cannot_evacuate() {
        let (lb, now) = setup();
        lb.tracker().set_background(m(0), 5.0);
        lb.tracker().set_background(m(1), 0.1);
        let plans = lb.plan(now, &[(m(0), vec![]), (m(1), vec![])]);
        assert!(plans.is_empty());
    }

    #[test]
    fn two_overloaded_machines_spread_across_destinations() {
        let (lb, now) = setup();
        lb.tracker().set_background(m(0), 5.0);
        lb.tracker().set_background(m(1), 5.0);
        lb.tracker().set_background(m(2), 0.1);
        lb.tracker().set_background(m(3), 0.4);
        let plans = lb.plan(
            now,
            &[
                (m(0), vec![o(1)]),
                (m(1), vec![o(2)]),
                (m(2), vec![]),
                (m(3), vec![]),
            ],
        );
        assert_eq!(plans.len(), 2);
        // first evacuation takes the least-loaded m2; projection bump steers
        // the second to m3
        assert_eq!(plans[0], MigrationPlan { object: o(1), from: m(0), to: m(2) });
        assert_eq!(plans[1], MigrationPlan { object: o(2), from: m(1), to: m(3) });
    }

    #[test]
    fn plan_is_deterministic() {
        let (lb, now) = setup();
        lb.tracker().set_background(m(0), 9.0);
        lb.tracker().set_background(m(1), 0.0);
        let hosting = [(m(0), vec![o(3), o(1), o(2)]), (m(1), vec![])];
        let a = lb.plan(now, &hosting);
        let b = lb.plan(now, &hosting);
        assert_eq!(a, b);
        assert_eq!(a[0].object, o(1), "lowest-id object moves first");
    }

    #[test]
    #[should_panic(expected = "high mark must exceed low mark")]
    fn invalid_marks_rejected() {
        let _ = LoadBalancer::new(WaterMarks { high: 1.0, low: 2.0 }, LoadTracker::new());
    }

    #[test]
    fn request_driven_load_triggers_migration() {
        const SEC: u64 = 1_000_000_000;
        let (lb, _) = setup();
        // 500 requests in one second on m0 → score ≈ 5
        for i in 0..500 {
            lb.tracker().record_request(m(0), SimTime(i * SEC / 500));
        }
        let now = SimTime(SEC);
        let plans = lb.plan(now, &[(m(0), vec![o(1)]), (m(1), vec![])]);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].to, m(1));
    }
}
