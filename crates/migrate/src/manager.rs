//! Migration mechanics.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use ohpc_orb::context::OrRow;
use ohpc_orb::skeleton::RemoteObject;
use ohpc_orb::{Context, ObjectId, ObjectReference, OrbError};

/// A remote object that can be checkpointed and re-created elsewhere.
pub trait Migratable: RemoteObject {
    /// Serializes the object's full state.
    fn serialize_state(&self) -> Bytes;
}

/// Builds a fresh instance of a type from serialized state.
pub type ObjectFactory =
    Box<dyn Fn(&[u8]) -> Result<Arc<dyn Migratable>, String> + Send + Sync>;

/// Migration failures.
#[derive(Debug)]
pub enum MigrateError {
    /// The object is not registered with this manager.
    NotManaged(ObjectId),
    /// No factory for the object's type name.
    NoFactory(String),
    /// The factory rejected the serialized state.
    Restore(String),
    /// Minting the new OR failed (destination lacks the requested adverts).
    Or(OrbError),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NotManaged(id) => write!(f, "object {id} is not managed"),
            MigrateError::NoFactory(t) => write!(f, "no factory registered for type '{t}'"),
            MigrateError::Restore(m) => write!(f, "state restore failed: {m}"),
            MigrateError::Or(e) => write!(f, "cannot mint OR at destination: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// Coordinates migrations across a set of contexts.
///
/// The manager tracks which context currently hosts each managed object and
/// owns the per-type factories used to rebuild state at the destination.
#[derive(Default)]
pub struct MigrationManager {
    objects: RwLock<HashMap<ObjectId, ManagedObject>>,
    factories: RwLock<HashMap<String, ObjectFactory>>,
}

struct ManagedObject {
    instance: Arc<dyn Migratable>,
    home: Context,
}

impl MigrationManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory for `type_name`.
    pub fn register_factory(
        &self,
        type_name: &str,
        factory: impl Fn(&[u8]) -> Result<Arc<dyn Migratable>, String> + Send + Sync + 'static,
    ) {
        self.factories.write().insert(type_name.to_string(), Box::new(factory));
    }

    /// Hosts `object` in `ctx` under management, returning its id.
    pub fn register(&self, ctx: &Context, object: Arc<dyn Migratable>) -> ObjectId {
        let id = ctx.register(object.clone());
        self.objects
            .write()
            .insert(id, ManagedObject { instance: object, home: ctx.clone() });
        id
    }

    /// The context currently hosting `id`.
    pub fn home_of(&self, id: ObjectId) -> Option<Context> {
        self.objects.read().get(&id).map(|m| m.home.clone())
    }

    /// Number of managed objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// True when nothing is managed.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Migrates `id` from its current home to `dst`, advertising the new OR
    /// with `rows`. Returns the new OR (already installed as a tombstone at
    /// the old home, so existing GPs will follow).
    pub fn migrate(
        &self,
        id: ObjectId,
        dst: &Context,
        rows: &[OrRow],
    ) -> Result<ObjectReference, MigrateError> {
        let (instance, src) = {
            let objects = self.objects.read();
            let m = objects.get(&id).ok_or(MigrateError::NotManaged(id))?;
            (m.instance.clone(), m.home.clone())
        };

        if src.id() == dst.id() {
            // Degenerate move: nothing to do but remint the OR.
            return src.make_or(id, rows).map_err(MigrateError::Or);
        }

        // 1. Snapshot and rebuild at the destination.
        let type_name = instance.type_name().to_string();
        let state = instance.serialize_state();
        let fresh = {
            let factories = self.factories.read();
            let factory =
                factories.get(&type_name).ok_or(MigrateError::NoFactory(type_name.clone()))?;
            factory(&state).map_err(MigrateError::Restore)?
        };

        // 2. Adopt at destination under the same identity, mint the new OR.
        dst.adopt(id, fresh.clone());
        let new_or = dst.make_or(id, rows).map_err(|e| {
            // roll back the adoption so the object is not served from two homes
            dst.take_object(id);
            MigrateError::Or(e)
        })?;

        // 3. Forward the old home, then retire the old instance.
        src.install_tombstone(id, new_or.clone());
        src.take_object(id);

        self.objects
            .write()
            .insert(id, ManagedObject { instance: fresh, home: dst.clone() });
        ohpc_telemetry::inc("migrate_migrations_total", &[]);
        Ok(new_or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohpc_orb::skeleton::MethodError;
    use ohpc_orb::{CapabilityRegistry, ContextId, Location, ProtocolId};
    use ohpc_xdr::{XdrDecode, XdrEncode, XdrReader, XdrWriter};
    use std::sync::atomic::{AtomicI64, Ordering};

    /// A counter whose value is its entire state.
    struct Counter(AtomicI64);

    impl RemoteObject for Counter {
        fn type_name(&self) -> &str {
            "Counter"
        }
        fn dispatch(
            &self,
            method: u32,
            args: &mut XdrReader<'_>,
            out: &mut XdrWriter,
        ) -> Result<(), MethodError> {
            match method {
                1 => {
                    let n = i64::decode(args).map_err(|e| MethodError::BadArgs(e.to_string()))?;
                    let v = self.0.fetch_add(n, Ordering::Relaxed) + n;
                    v.encode(out);
                    Ok(())
                }
                m => Err(MethodError::NoSuchMethod(m)),
            }
        }
    }

    impl Migratable for Counter {
        fn serialize_state(&self) -> Bytes {
            Bytes::copy_from_slice(&self.0.load(Ordering::Relaxed).to_be_bytes())
        }
    }

    fn counter_factory(state: &[u8]) -> Result<Arc<dyn Migratable>, String> {
        let v = i64::from_be_bytes(state.try_into().map_err(|_| "bad state".to_string())?);
        Ok(Arc::new(Counter(AtomicI64::new(v))))
    }

    fn ctx(id: u64, machine: u32) -> Context {
        let c = Context::new(
            ContextId(id),
            Location::new(machine, 0),
            Arc::new(CapabilityRegistry::new()),
        );
        c.advertise(ProtocolId::TCP, format!("tcp://h{machine}:1"));
        c
    }

    fn add(ctx: &Context, id: ObjectId, n: i64) -> Result<i64, ohpc_orb::ReplyStatus> {
        use ohpc_orb::{ReplyStatus, RequestId, RequestMessage};
        let mut w = XdrWriter::new();
        n.encode(&mut w);
        let reply = ctx.handle_request(RequestMessage {
            request_id: RequestId(1),
            object: id,
            method: 1,
            oneway: false,
            glue: None,
            body: bytes::Bytes::copy_from_slice(w.peek()),
            trace: None,
        });
        match reply.status {
            ReplyStatus::Ok => Ok(ohpc_xdr::decode_from_slice(&reply.body).unwrap()),
            s => Err(s),
        }
    }

    #[test]
    fn state_travels_with_the_object() {
        let mgr = MigrationManager::new();
        mgr.register_factory("Counter", counter_factory);
        let a = ctx(1, 0);
        let b = ctx(2, 1);

        let id = mgr.register(&a, Arc::new(Counter(AtomicI64::new(0))));
        assert_eq!(add(&a, id, 5).unwrap(), 5);
        assert_eq!(mgr.home_of(id).unwrap().id(), a.id());

        let new_or = mgr.migrate(id, &b, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
        assert_eq!(new_or.location, Location::new(1, 0));
        assert_eq!(mgr.home_of(id).unwrap().id(), b.id());

        // state continued at 5
        assert_eq!(add(&b, id, 2).unwrap(), 7);
        // old home forwards
        assert!(matches!(add(&a, id, 1).unwrap_err(), ohpc_orb::ReplyStatus::Moved(or) if *or == new_or));
    }

    #[test]
    fn migrate_unmanaged_fails() {
        let mgr = MigrationManager::new();
        let b = ctx(2, 1);
        assert!(matches!(
            mgr.migrate(ObjectId(99), &b, &[]),
            Err(MigrateError::NotManaged(_))
        ));
    }

    #[test]
    fn migrate_without_factory_fails_and_leaves_source_serving() {
        let mgr = MigrationManager::new();
        let a = ctx(1, 0);
        let b = ctx(2, 1);
        let id = mgr.register(&a, Arc::new(Counter(AtomicI64::new(3))));
        assert!(matches!(
            mgr.migrate(id, &b, &[OrRow::Plain(ProtocolId::TCP)]),
            Err(MigrateError::NoFactory(_))
        ));
        // source still serves
        assert_eq!(add(&a, id, 1).unwrap(), 4);
    }

    #[test]
    fn failed_or_minting_rolls_back_adoption() {
        let mgr = MigrationManager::new();
        mgr.register_factory("Counter", counter_factory);
        let a = ctx(1, 0);
        // destination with no adverts: make_or must fail
        let b = Context::new(
            ContextId(2),
            Location::new(1, 0),
            Arc::new(CapabilityRegistry::new()),
        );
        let id = mgr.register(&a, Arc::new(Counter(AtomicI64::new(1))));
        assert!(matches!(
            mgr.migrate(id, &b, &[OrRow::Plain(ProtocolId::TCP)]),
            Err(MigrateError::Or(_))
        ));
        assert!(!b.hosts(id), "rolled back");
        assert_eq!(add(&a, id, 1).unwrap(), 2, "source still authoritative");
    }

    #[test]
    fn chain_of_migrations() {
        let mgr = MigrationManager::new();
        mgr.register_factory("Counter", counter_factory);
        let contexts: Vec<Context> = (0..4).map(|i| ctx(i as u64 + 1, i)).collect();
        let id = mgr.register(&contexts[0], Arc::new(Counter(AtomicI64::new(0))));

        for (hop, c) in contexts.iter().enumerate().skip(1) {
            mgr.migrate(id, c, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
            assert_eq!(add(c, id, 1).unwrap(), hop as i64);
        }
        // every earlier context forwards (directly or transitively)
        for c in &contexts[..3] {
            assert!(matches!(add(c, id, 1).unwrap_err(), ohpc_orb::ReplyStatus::Moved(_)));
        }
    }

    #[test]
    fn same_context_migration_is_a_remint() {
        let mgr = MigrationManager::new();
        mgr.register_factory("Counter", counter_factory);
        let a = ctx(1, 0);
        let id = mgr.register(&a, Arc::new(Counter(AtomicI64::new(9))));
        let or = mgr.migrate(id, &a, &[OrRow::Plain(ProtocolId::TCP)]).unwrap();
        assert_eq!(or.object, id);
        assert_eq!(add(&a, id, 1).unwrap(), 10, "no state reset");
    }
}
