//! Per-(protocol, endpoint) health scores and circuit breakers.
//!
//! Selection consults [`HealthRegistry::allow`] per OR-table entry, so an
//! open breaker rejects an entry exactly like any other applicability
//! failure and the next entry in the preference order wins — failover as an
//! applicability predicate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ohpc_telemetry::{Clock, Registry};

/// Identity of one health-tracked target: the *terminal* protocol and
/// endpoint of an OR entry (glue wrapping is transparent — a glue entry and
/// a plain entry over the same wire share one breaker).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HealthKey {
    /// Terminal protocol name (e.g. `tcp`).
    pub protocol: String,
    /// Terminal endpoint string (e.g. `sim://M1:1`).
    pub endpoint: String,
}

impl HealthKey {
    /// Builds a key.
    pub fn new(protocol: impl Into<String>, endpoint: impl Into<String>) -> Self {
        Self { protocol: protocol.into(), endpoint: endpoint.into() }
    }
}

impl std::fmt::Display for HealthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.protocol, self.endpoint)
    }
}

/// Circuit-breaker state for one [`HealthKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probe traffic is let through; one failure re-opens,
    /// enough successes close.
    HalfOpen,
}

impl BreakerState {
    /// Label used in telemetry.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Clock nanoseconds an open breaker rejects before probing (Open →
    /// HalfOpen).
    pub cooldown_ns: u64,
    /// Successes in HalfOpen required to close.
    pub close_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_ns: 200_000_000, // 200 ms
            close_after: 1,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct EndpointHealth {
    state: Option<BreakerState>, // None == Closed, never observed a failure
    consecutive_failures: u32,
    halfopen_successes: u32,
    opened_at_ns: u64,
    total_failures: u64,
    total_successes: u64,
}

impl EndpointHealth {
    fn state(&self) -> BreakerState {
        self.state.unwrap_or(BreakerState::Closed)
    }
}

/// Health scores and breakers for every target a process talks to.
///
/// Cheap to share (`Arc` it); all methods are callable concurrently. Time
/// flows through the pluggable [`Clock`] so cooldowns are deterministic
/// under netsim virtual time.
pub struct HealthRegistry {
    clock: Arc<dyn Clock>,
    policy: HealthPolicy,
    map: Mutex<HashMap<HealthKey, EndpointHealth>>,
    /// Bumped on every breaker-state transition — all four of them:
    /// Closed→Open and HalfOpen→Open (`record_failure`), →Closed
    /// (`record_success`), Open→HalfOpen (`allow` after cooldown). The ORB's
    /// per-GP selection cache keys on this counter, so a missed bump would
    /// silently serve routes that ignore a breaker; ohpc-analyze's
    /// `epoch-bump` rule enforces that every state mutation touches it, and
    /// `every_transition_bumps_the_generation` audits the four transitions.
    ///
    /// Note what does *not* bump: successes and sub-threshold failures on a
    /// Closed breaker, and time passing on an Open one. The last is why the
    /// cache only memoizes selections no breaker influenced — an Open
    /// breaker's cooldown elapsing changes selection without touching this
    /// counter until the next `allow` observes it.
    generation: AtomicU64,
}

impl std::fmt::Debug for HealthRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthRegistry")
            .field("targets", &self.map.lock().len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl Default for HealthRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthRegistry {
    /// Registry on the global telemetry clock with the default policy.
    pub fn new() -> Self {
        Self::with_clock(Registry::global().clock())
    }

    /// Registry on an explicit clock (netsim's `VirtualClock`, a
    /// `ManualClock` in tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            policy: HealthPolicy::default(),
            map: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// Builder: replaces the breaker tuning.
    pub fn with_policy(mut self, policy: HealthPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The clock driving cooldowns (the ORB also times request deadlines
    /// against it).
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// The breaker tuning.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Should a request be offered to `key` right now?
    ///
    /// Closed and HalfOpen admit traffic. Open rejects until the cooldown
    /// elapses, at which point the breaker transitions to HalfOpen and the
    /// current request becomes the probe.
    pub fn allow(&self, key: &HealthKey) -> bool {
        let now = self.clock.now_ns();
        let mut map = self.map.lock();
        let Some(h) = map.get_mut(key) else { return true };
        match h.state() {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.saturating_sub(h.opened_at_ns) >= self.policy.cooldown_ns {
                    h.state = Some(BreakerState::HalfOpen);
                    h.halfopen_successes = 0;
                    self.generation.fetch_add(1, Ordering::Release);
                    record_transition(key, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Feeds a successful exchange (any delivered reply — the wire worked
    /// even if the application answered with an error status).
    pub fn record_success(&self, key: &HealthKey) {
        let mut map = self.map.lock();
        let Some(h) = map.get_mut(key) else { return };
        h.total_successes += 1;
        match h.state() {
            BreakerState::Closed => h.consecutive_failures = 0,
            // A success while Open means a raced in-flight request beat the
            // breaker; treat it as probe evidence.
            BreakerState::HalfOpen | BreakerState::Open => {
                h.halfopen_successes += 1;
                if h.halfopen_successes >= self.policy.close_after {
                    h.state = Some(BreakerState::Closed);
                    h.consecutive_failures = 0;
                    self.generation.fetch_add(1, Ordering::Release);
                    record_transition(key, BreakerState::Closed);
                }
            }
        }
    }

    /// Feeds a transport failure or timeout.
    pub fn record_failure(&self, key: &HealthKey) {
        let now = self.clock.now_ns();
        let mut map = self.map.lock();
        let h = map.entry(key.clone()).or_default();
        h.total_failures += 1;
        h.consecutive_failures += 1;
        match h.state() {
            BreakerState::Closed => {
                if h.consecutive_failures >= self.policy.failure_threshold {
                    h.state = Some(BreakerState::Open);
                    h.opened_at_ns = now;
                    self.generation.fetch_add(1, Ordering::Release);
                    record_transition(key, BreakerState::Open);
                }
            }
            // A failed probe re-opens and restarts the cooldown.
            BreakerState::HalfOpen => {
                h.state = Some(BreakerState::Open);
                h.opened_at_ns = now;
                self.generation.fetch_add(1, Ordering::Release);
                record_transition(key, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    /// Breaker-state generation: changes whenever any breaker transitions.
    /// Selection caches keyed on health decisions revalidate against it.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Current breaker state (Closed for never-seen keys).
    pub fn state(&self, key: &HealthKey) -> BreakerState {
        self.map.lock().get(key).map(EndpointHealth::state).unwrap_or(BreakerState::Closed)
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self, key: &HealthKey) -> u32 {
        self.map.lock().get(key).map(|h| h.consecutive_failures).unwrap_or(0)
    }

    /// Health score in [0, 1]: the lifetime success fraction (1.0 for
    /// never-seen keys). A coarse signal for dashboards; selection decisions
    /// use the breaker state, not the score.
    pub fn score(&self, key: &HealthKey) -> f64 {
        let map = self.map.lock();
        let Some(h) = map.get(key) else { return 1.0 };
        let total = h.total_successes + h.total_failures;
        if total == 0 {
            return 1.0;
        }
        h.total_successes as f64 / total as f64
    }

    /// (successes, failures) lifetime totals for `key`.
    pub fn totals(&self, key: &HealthKey) -> (u64, u64) {
        let map = self.map.lock();
        map.get(key).map(|h| (h.total_successes, h.total_failures)).unwrap_or((0, 0))
    }
}

/// One breaker transition: counter for rate, gauge for current state. When
/// the observing thread is inside a trace scope (a GP invocation), the
/// transition also lands in that trace's flight-recorder timeline.
fn record_transition(key: &HealthKey, to: BreakerState) {
    let labels =
        [("protocol", key.protocol.as_str()), ("endpoint", key.endpoint.as_str()), ("to", to.label())];
    ohpc_telemetry::inc("resilience_breaker_transitions_total", &labels);
    ohpc_telemetry::trace_event("breaker_transition", &labels);
    Registry::global()
        .gauge(
            "resilience_breaker_open",
            &[("protocol", key.protocol.as_str()), ("endpoint", key.endpoint.as_str())],
        )
        .set(match to {
            BreakerState::Open => 1,
            BreakerState::Closed | BreakerState::HalfOpen => 0,
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohpc_telemetry::ManualClock;

    fn reg(clock: &Arc<ManualClock>) -> HealthRegistry {
        HealthRegistry::with_clock(clock.clone()).with_policy(HealthPolicy {
            failure_threshold: 3,
            cooldown_ns: 1_000,
            close_after: 1,
        })
    }

    fn key() -> HealthKey {
        HealthKey::new("tcp", "sim://M1:1")
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let k = key();
        assert!(r.allow(&k));
        r.record_failure(&k);
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Closed);
        assert!(r.allow(&k));
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Open);
        assert!(!r.allow(&k), "open breaker rejects");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let k = key();
        r.record_failure(&k);
        r.record_failure(&k);
        r.record_success(&k);
        r.record_failure(&k);
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Closed, "streak was broken");
        assert_eq!(r.consecutive_failures(&k), 2);
    }

    #[test]
    fn cooldown_half_opens_then_probe_outcome_decides() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let k = key();
        for _ in 0..3 {
            r.record_failure(&k);
        }
        assert!(!r.allow(&k));
        clock.advance(999);
        assert!(!r.allow(&k), "cooldown not yet elapsed");
        clock.advance(1);
        assert!(r.allow(&k), "probe admitted");
        assert_eq!(r.state(&k), BreakerState::HalfOpen);

        // Failed probe re-opens with a fresh cooldown.
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Open);
        assert!(!r.allow(&k));
        clock.advance(1_000);
        assert!(r.allow(&k));

        // Successful probe closes.
        r.record_success(&k);
        assert_eq!(r.state(&k), BreakerState::Closed);
        assert!(r.allow(&k));
    }

    #[test]
    fn unknown_keys_are_healthy() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let k = key();
        assert!(r.allow(&k));
        assert_eq!(r.state(&k), BreakerState::Closed);
        assert_eq!(r.score(&k), 1.0);
        assert_eq!(r.totals(&k), (0, 0));
    }

    #[test]
    fn score_tracks_lifetime_fraction() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let k = key();
        r.record_failure(&k);
        r.record_success(&k);
        r.record_success(&k);
        r.record_success(&k);
        assert_eq!(r.totals(&k), (3, 1));
        assert!((r.score(&k) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn close_after_requires_that_many_probe_successes() {
        let clock = Arc::new(ManualClock::new());
        let r = HealthRegistry::with_clock(clock.clone()).with_policy(HealthPolicy {
            failure_threshold: 1,
            cooldown_ns: 10,
            close_after: 2,
        });
        let k = key();
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Open);
        clock.advance(10);
        assert!(r.allow(&k));
        r.record_success(&k);
        assert_eq!(r.state(&k), BreakerState::HalfOpen, "one success is not enough");
        r.record_success(&k);
        assert_eq!(r.state(&k), BreakerState::Closed);
    }

    /// The generation audit: every one of the four breaker transitions must
    /// bump the counter the ORB's selection cache keys on, and
    /// non-transition events must not. A transition that forgets the bump
    /// would let a cached selection keep routing as if the transition never
    /// happened.
    #[test]
    fn every_transition_bumps_the_generation() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let k = key();

        // Non-transitions leave the generation alone.
        let g0 = r.generation();
        r.record_success(&k); // unseen key: no-op
        r.record_failure(&k); // 1 of 3: still Closed
        r.record_failure(&k); // 2 of 3: still Closed
        assert!(r.allow(&k));
        assert_eq!(r.generation(), g0, "sub-threshold activity must not bump");

        // Closed → Open (record_failure at threshold).
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Open);
        assert_eq!(r.generation(), g0 + 1);

        // Time passing while Open does not bump — the cache's reason to
        // never memoize breaker-influenced selections.
        clock.advance(999);
        assert!(!r.allow(&k));
        assert_eq!(r.generation(), g0 + 1);

        // Open → HalfOpen (allow after cooldown).
        clock.advance(1);
        assert!(r.allow(&k));
        assert_eq!(r.state(&k), BreakerState::HalfOpen);
        assert_eq!(r.generation(), g0 + 2);

        // HalfOpen → Open (failed probe).
        r.record_failure(&k);
        assert_eq!(r.state(&k), BreakerState::Open);
        assert_eq!(r.generation(), g0 + 3);

        // Open/HalfOpen → Closed (successful probe).
        clock.advance(1_000);
        assert!(r.allow(&k)); // → HalfOpen: g0 + 4
        r.record_success(&k);
        assert_eq!(r.state(&k), BreakerState::Closed);
        assert_eq!(r.generation(), g0 + 5);

        // Steady-state successes on a Closed breaker stay silent.
        r.record_success(&k);
        r.record_success(&k);
        assert_eq!(r.generation(), g0 + 5);
    }

    #[test]
    fn distinct_keys_have_independent_breakers() {
        let clock = Arc::new(ManualClock::new());
        let r = reg(&clock);
        let a = HealthKey::new("tcp", "sim://M1:1");
        let b = HealthKey::new("tcp", "sim://M2:1");
        for _ in 0..3 {
            r.record_failure(&a);
        }
        assert!(!r.allow(&a));
        assert!(r.allow(&b));
        assert_eq!(r.state(&b), BreakerState::Closed);
    }
}
