//! # ohpc-resilience — fault-aware invocation policy for the open ORB
//!
//! The paper's protocol selection runs *per request*, which makes the OR's
//! preference-ordered protocol table a natural failover ladder: when the
//! preferred entry is unhealthy, the next applicable entry should win, the
//! same way migration forwards are absorbed transparently. This crate holds
//! the policy pieces the ORB threads through that path:
//!
//! - [`RetryPolicy`]: a per-request retry budget and deadline with
//!   exponential backoff and *deterministic*, seed-derived jitter — no
//!   wall-clock randomness, so netsim runs replay bit-identically.
//! - [`classify`]: splits [`TransportError`] into retryable vs permanent.
//!   Ambiguity (a request that was sent but got no reply) is a *phase*
//!   property the ORB layers on top via its own error type; see
//!   [`ErrorClass::Ambiguous`].
//! - [`HealthRegistry`]: per-(protocol, endpoint) health scores with a
//!   three-state circuit breaker ([`BreakerState`]), fed by transport
//!   errors and timeouts, consulted by protocol selection so an open
//!   breaker rejects the entry exactly like any other inapplicability.
//! - [`Sleeper`]: how backoff waits — real threads in production
//!   ([`ThreadSleeper`]), a closure advancing a virtual clock in tests
//!   ([`FnSleeper`]).
//!
//! Everything is driven by the pluggable [`ohpc_telemetry::Clock`], so the
//! whole policy is testable under deterministic virtual time.

#![warn(missing_docs)]

mod classify;
mod health;
mod retry;
mod sleep;

pub use classify::{classify, ErrorClass};
pub use health::{BreakerState, HealthKey, HealthPolicy, HealthRegistry};
pub use retry::{splitmix64, RetryPolicy};
pub use sleep::{FnSleeper, NoopSleeper, Sleeper, ThreadSleeper};

// Re-exported so callers can name the error type without depending on
// ohpc-transport directly.
pub use ohpc_transport::TransportError;
