//! Retry budgets and deterministic exponential backoff.

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer. Used to
/// derive backoff jitter from `(seed, salt, attempt)` so two runs with the
/// same seed produce bit-identical schedules — the netsim property every
/// experiment in this repo relies on. Public because the fault-injection
/// harness reuses it for its probabilistic schedules.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-request invocation policy: how many attempts, how long in total, and
/// how to space them out.
///
/// `max_attempts` counts the first try: `max_attempts == 1` disables
/// retries entirely. The deadline is a budget measured from the first
/// attempt against the pluggable clock; once `deadline_ns` would be
/// exceeded (including the pending backoff sleep) the invocation fails with
/// a deadline error rather than sleeping past its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (>= 1).
    pub max_attempts: u32,
    /// Overall budget in clock nanoseconds (None = unbounded).
    pub deadline_ns: Option<u64>,
    /// Backoff before the first retry.
    pub base_backoff_ns: u64,
    /// Multiplier applied per retry (2 = classic doubling).
    pub multiplier: u32,
    /// Upper bound on any single backoff sleep.
    pub max_backoff_ns: u64,
    /// Jitter amplitude in permille of the computed backoff (200 = ±20%).
    pub jitter_per_mille: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Whether requests issued under this policy may be re-sent after an
    /// ambiguous (sent-but-no-reply) outcome. Defaults to false: at-most-once
    /// unless the caller declares idempotency.
    pub idempotent: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            deadline_ns: None,
            base_backoff_ns: 1_000_000,      // 1 ms
            multiplier: 2,
            max_backoff_ns: 100_000_000,     // 100 ms
            jitter_per_mille: 200,
            seed: 0,
            idempotent: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// Builder: total attempts including the first.
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Builder: overall deadline in nanoseconds.
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Builder: backoff shape.
    pub fn with_backoff_ns(mut self, base: u64, multiplier: u32, cap: u64) -> Self {
        self.base_backoff_ns = base;
        self.multiplier = multiplier.max(1);
        self.max_backoff_ns = cap.max(base);
        self
    }

    /// Builder: jitter seed (derive it from the experiment seed for
    /// reproducible runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: declares every request under this policy idempotent, making
    /// ambiguous outcomes retryable.
    pub fn assume_idempotent(mut self) -> Self {
        self.idempotent = true;
        self
    }

    /// Backoff before retry number `retry` (0-based: the sleep between the
    /// first and second attempt is `backoff_ns(0, …)`). `salt` should vary
    /// per logical request (e.g. the request id) so concurrent callers do
    /// not thunder in lockstep, while staying deterministic for a given
    /// (seed, salt, retry) triple.
    pub fn backoff_ns(&self, retry: u32, salt: u64) -> u64 {
        let mut exp = self.base_backoff_ns;
        for _ in 0..retry {
            exp = exp.saturating_mul(u64::from(self.multiplier));
            if exp >= self.max_backoff_ns {
                break;
            }
        }
        let exp = exp.min(self.max_backoff_ns);
        let j = u64::from(self.jitter_per_mille.min(999));
        if j == 0 || exp == 0 {
            return exp;
        }
        // Deterministic factor in [1000 - j, 1000 + j] permille.
        let h = splitmix64(self.seed ^ salt.rotate_left(17) ^ u64::from(retry));
        let factor = 1000 - j + (h % (2 * j + 1));
        exp / 1000 * factor + exp % 1000 * factor / 1000
    }

    /// Absolute deadline for an invocation that started at `start_ns`.
    pub fn deadline_from(&self, start_ns: u64) -> Option<u64> {
        self.deadline_ns.map(|d| start_ns.saturating_add(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_for_same_inputs() {
        let p = RetryPolicy::default().with_seed(42);
        let q = RetryPolicy::default().with_seed(42);
        for retry in 0..6 {
            for salt in [0u64, 1, 999] {
                assert_eq!(p.backoff_ns(retry, salt), q.backoff_ns(retry, salt));
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let p = RetryPolicy::default().with_seed(1);
        let q = RetryPolicy::default().with_seed(2);
        let diverged = (0..8).any(|r| p.backoff_ns(r, 7) != q.backoff_ns(r, 7));
        assert!(diverged, "jitter must depend on the seed");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter_per_mille: 0,
            base_backoff_ns: 1_000,
            multiplier: 2,
            max_backoff_ns: 8_000,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ns(0, 0), 1_000);
        assert_eq!(p.backoff_ns(1, 0), 2_000);
        assert_eq!(p.backoff_ns(2, 0), 4_000);
        assert_eq!(p.backoff_ns(3, 0), 8_000);
        assert_eq!(p.backoff_ns(10, 0), 8_000, "capped");
        assert_eq!(p.backoff_ns(63, 0), 8_000, "no overflow at large retry counts");
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        let p = RetryPolicy {
            jitter_per_mille: 200,
            base_backoff_ns: 1_000_000,
            multiplier: 1,
            max_backoff_ns: 1_000_000,
            ..RetryPolicy::default()
        };
        for salt in 0..200 {
            let b = p.backoff_ns(0, salt);
            assert!((800_000..=1_200_000).contains(&b), "jittered backoff {b} out of band");
        }
    }

    #[test]
    fn no_retries_policy_has_single_attempt() {
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
        assert_eq!(RetryPolicy::default().with_attempts(0).max_attempts, 1);
    }

    #[test]
    fn deadline_from_saturates() {
        let p = RetryPolicy::default().with_deadline_ns(100);
        assert_eq!(p.deadline_from(u64::MAX), Some(u64::MAX));
        assert_eq!(p.deadline_from(50), Some(150));
        assert_eq!(RetryPolicy::default().deadline_from(50), None);
    }

    #[test]
    fn splitmix_is_a_bijection_sample() {
        // Distinct inputs keep distinct outputs (sanity, not proof).
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
