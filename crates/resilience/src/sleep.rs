//! How backoff waits.

use std::sync::Arc;

/// Strategy for spending a backoff delay. Production sleeps the thread;
/// simulations advance a virtual clock instead so retries cost virtual, not
/// wall, time.
pub trait Sleeper: Send + Sync {
    /// Blocks (or simulates blocking) for `ns` nanoseconds.
    fn sleep_ns(&self, ns: u64);
}

/// Real wall-clock sleep.
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep_ns(&self, ns: u64) {
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

/// Sleeps by running a closure — the netsim harness passes one that advances
/// the simulation's `VirtualClock`, keeping backoff on the virtual timeline.
pub struct FnSleeper(Arc<dyn Fn(u64) + Send + Sync>);

impl FnSleeper {
    /// Wraps the closure.
    pub fn new(f: impl Fn(u64) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }
}

impl Sleeper for FnSleeper {
    fn sleep_ns(&self, ns: u64) {
        (self.0)(ns)
    }
}

/// Ignores the delay entirely (unit tests that only care about attempt
/// counts).
pub struct NoopSleeper;

impl Sleeper for NoopSleeper {
    fn sleep_ns(&self, _ns: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fn_sleeper_runs_the_closure() {
        let total = Arc::new(AtomicU64::new(0));
        let t = total.clone();
        let s = FnSleeper::new(move |ns| {
            t.fetch_add(ns, Ordering::Relaxed);
        });
        s.sleep_ns(100);
        s.sleep_ns(250);
        assert_eq!(total.load(Ordering::Relaxed), 350);
    }

    #[test]
    fn thread_sleeper_zero_is_instant() {
        ThreadSleeper.sleep_ns(0);
        NoopSleeper.sleep_ns(u64::MAX);
    }
}
