//! Retryable vs permanent: the error taxonomy retry policy runs on.

use ohpc_transport::TransportError;

/// How a failed invocation attempt relates to the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The request provably never reached the server (dial refused, send
    /// failed before the frame was handed over). Safe to retry for any
    /// request.
    Retryable,
    /// The request was sent but no reply arrived: the server may or may not
    /// have executed it. Only idempotent requests may be retried.
    Ambiguous,
    /// Retrying cannot help (malformed endpoint, oversized frame,
    /// application-level failure). The error surfaces immediately.
    Permanent,
}

impl ErrorClass {
    /// Label used in telemetry (`resilience_*{class=...}`).
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Retryable => "retryable",
            ErrorClass::Ambiguous => "ambiguous",
            ErrorClass::Permanent => "permanent",
        }
    }
}

/// Classifies a transport failure that occurred *before* the request frame
/// was handed to the fabric. Failures after the frame was sent must be
/// promoted to [`ErrorClass::Ambiguous`] by the caller (only it knows the
/// phase); [`classify`] never returns `Ambiguous` itself.
///
/// - `ConnectionRefused`, `Closed`, `Io`, `Timeout` are transient
///   conditions of the fabric or the peer: another attempt (possibly down
///   the OR table) can succeed. A `Timeout` observed *while waiting for a
///   reply* must be promoted to `Ambiguous` by the caller like any other
///   post-send failure.
/// - `FrameTooLarge` and `WrongEndpoint` are properties of the request or
///   the OR entry itself: no number of retries changes them.
pub fn classify(e: &TransportError) -> ErrorClass {
    match e {
        TransportError::ConnectionRefused(_)
        | TransportError::Closed
        | TransportError::Io(_)
        | TransportError::Timeout => ErrorClass::Retryable,
        TransportError::FrameTooLarge(_) | TransportError::WrongEndpoint(_) => {
            ErrorClass::Permanent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_kinds_are_retryable() {
        assert_eq!(classify(&TransportError::Closed), ErrorClass::Retryable);
        assert_eq!(
            classify(&TransportError::ConnectionRefused("mem://1".into())),
            ErrorClass::Retryable
        );
        assert_eq!(
            classify(&TransportError::Io("timed out: link partitioned".into())),
            ErrorClass::Retryable
        );
        // A deadline-driven recv timeout is transient by kind; the recv
        // phase promotes it to Ambiguous, not this function.
        assert_eq!(classify(&TransportError::Timeout), ErrorClass::Retryable);
    }

    #[test]
    fn structural_kinds_are_permanent() {
        assert_eq!(classify(&TransportError::FrameTooLarge(1 << 30)), ErrorClass::Permanent);
        assert_eq!(
            classify(&TransportError::WrongEndpoint("tcp://h:1".into())),
            ErrorClass::Permanent
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ErrorClass::Retryable.label(), "retryable");
        assert_eq!(ErrorClass::Ambiguous.label(), "ambiguous");
        assert_eq!(ErrorClass::Permanent.label(), "permanent");
    }
}
