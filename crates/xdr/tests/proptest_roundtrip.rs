//! Property tests: every encodable value round-trips, the stream stays
//! 4-byte aligned, and mangled input never panics the decoder.

use ohpc_xdr::{decode_from_slice, encode_to_vec, XdrReader};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u32_roundtrip(v: u32) {
        prop_assert_eq!(decode_from_slice::<u32>(&encode_to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn u16_roundtrip(v: u16) {
        let buf = encode_to_vec(&v);
        prop_assert_eq!(buf.len() % 4, 0); // XDR pads shorts to a full word
        prop_assert_eq!(decode_from_slice::<u16>(&buf).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v: i64) {
        prop_assert_eq!(decode_from_slice::<i64>(&encode_to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn f64_roundtrip(v: f64) {
        let back = decode_from_slice::<f64>(&encode_to_vec(&v)).unwrap();
        if v.is_nan() { prop_assert!(back.is_nan()); } else { prop_assert_eq!(back, v); }
    }

    #[test]
    fn string_roundtrip(s in ".*") {
        let buf = encode_to_vec(&s);
        prop_assert_eq!(buf.len() % 4, 0);
        prop_assert_eq!(decode_from_slice::<String>(&buf).unwrap(), s);
    }

    #[test]
    fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..512)) {
        let buf = encode_to_vec(&v);
        prop_assert_eq!(buf.len() % 4, 0);
        prop_assert_eq!(decode_from_slice::<Vec<u8>>(&buf).unwrap(), v);
    }

    #[test]
    fn int_array_roundtrip(v in proptest::collection::vec(any::<i32>(), 0..256)) {
        let buf = encode_to_vec(&v);
        prop_assert_eq!(buf.len(), 4 + 4 * v.len());
        prop_assert_eq!(decode_from_slice::<Vec<i32>>(&buf).unwrap(), v);
    }

    #[test]
    fn tuple_roundtrip(a: u32, b in ".*", c in proptest::collection::vec(any::<i32>(), 0..64)) {
        let v = (a, b, c);
        prop_assert_eq!(decode_from_slice::<(u32, String, Vec<i32>)>(&encode_to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn option_roundtrip(v: Option<u64>) {
        prop_assert_eq!(decode_from_slice::<Option<u64>>(&encode_to_vec(&v)).unwrap(), v);
    }

    /// Arbitrary bytes never panic the decoder — they either decode or error.
    #[test]
    fn fuzz_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_from_slice::<String>(&data);
        let _ = decode_from_slice::<Vec<i32>>(&data);
        let _ = decode_from_slice::<(u32, String)>(&data);
        let mut r = XdrReader::new(&data);
        while r.get_u32().is_ok() {}
    }

    /// Truncating a valid encoding always yields Truncated (or a later error),
    /// never success with a different value.
    #[test]
    fn truncation_detected(v in proptest::collection::vec(any::<i32>(), 1..64), cut in 1usize..8) {
        let buf = encode_to_vec(&v);
        let cut = cut.min(buf.len());
        let sliced = &buf[..buf.len() - cut];
        prop_assert!(decode_from_slice::<Vec<i32>>(sliced).is_err());
    }
}
