use crate::{pad4, XdrError};

/// Default cap on any single length prefix (strings, opaques, arrays).
///
/// 64 MiB is far above anything the paper's workloads move in one request
/// (1M ints = 4 MiB) while still bounding what a corrupt or hostile peer can
/// make us allocate.
pub const DEFAULT_LENGTH_LIMIT: u32 = 64 << 20;

/// Borrowing XDR decoder over a byte slice.
///
/// Every read checks bounds and returns [`XdrError::Truncated`] rather than
/// panicking, because input typically arrives from the network.
#[derive(Debug, Clone)]
pub struct XdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
    length_limit: u32,
}

impl<'a> XdrReader<'a> {
    /// Wraps `buf` with the default length limit.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, length_limit: DEFAULT_LENGTH_LIMIT }
    }

    /// Wraps `buf` with a custom cap on length prefixes.
    pub fn with_length_limit(buf: &'a [u8], limit: u32) -> Self {
        Self { buf, pos: 0, length_limit: limit }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset into the underlying slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::Truncated { needed: n, available: self.remaining() });
        }
        // ohpc-analyze: allow(panic-freedom) — range is bounds-checked by the remaining() guard above
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes an unsigned 32-bit integer.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_be_bytes(a))
    }

    /// Decodes a signed 32-bit integer.
    #[inline]
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Decodes an unsigned 64-bit hyper integer.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Decodes a signed 64-bit hyper integer.
    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(self.get_u64()? as i64)
    }

    /// Decodes an IEEE-754 single-precision float.
    #[inline]
    pub fn get_f32(&mut self) -> Result<f32, XdrError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Decodes an IEEE-754 double-precision float.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, XdrError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Decodes a boolean word, rejecting anything other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidBool(v)),
        }
    }

    fn check_len(&self, len: u32) -> Result<usize, XdrError> {
        if len > self.length_limit {
            return Err(XdrError::LengthOverflow {
                declared: len as u64,
                limit: self.length_limit as u64,
            });
        }
        // A declared length the rest of the buffer cannot possibly satisfy
        // is a corrupt prefix; reject it here, before any caller sizes an
        // allocation from it.
        if len as usize > self.remaining() {
            return Err(XdrError::Truncated { needed: len as usize, available: self.remaining() });
        }
        Ok(len as usize)
    }

    /// Decodes variable-length opaque data, validating zero padding.
    pub fn get_opaque(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()?;
        let len = self.check_len(len)?;
        self.get_fixed_opaque(len)
    }

    /// Decodes `len` bytes of fixed-length opaque data plus padding.
    pub fn get_fixed_opaque(&mut self, len: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(len)?;
        let pad = self.take(pad4(len))?;
        if pad.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(data)
    }

    /// Decodes a UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque()?;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| XdrError::InvalidUtf8)
    }

    /// Decodes an array length prefix, applying the length limit and
    /// bounding the count against the bytes actually left.
    ///
    /// Every XDR array element occupies at least one 4-byte word, so a
    /// count beyond `remaining() / 4` cannot be satisfied by any suffix of
    /// the frame — a corrupt prefix must not become a giant
    /// `Vec::with_capacity`.
    pub fn get_array_len(&mut self) -> Result<usize, XdrError> {
        let len = self.get_u32()?;
        let n = self.check_len(len)?;
        if n > self.remaining() / 4 {
            return Err(XdrError::Truncated { needed: n * 4, available: self.remaining() });
        }
        Ok(n)
    }

    /// Decodes a *trailing extension*: the backward-compatible way to append
    /// optional data to the end of a message.
    ///
    /// Returns `None` when the reader is already at end of input — a legacy
    /// frame encoded before the extension existed. Otherwise reads a `u32`
    /// version word followed by an opaque payload; callers decode payloads of
    /// versions they know and ignore the rest, so old decoders skip new
    /// extensions and new decoders accept old frames. Must be the last field
    /// read (anything after it would be indistinguishable from the
    /// extension's absence).
    pub fn get_trailing_extension(&mut self) -> Result<Option<(u32, &'a [u8])>, XdrError> {
        if self.is_empty() {
            return Ok(None);
        }
        let version = self.get_u32()?;
        let payload = self.get_opaque()?;
        Ok(Some((version, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_read_reports_needs() {
        let mut r = XdrReader::new(&[0, 0]);
        let err = r.get_u32().unwrap_err();
        assert_eq!(err, XdrError::Truncated { needed: 4, available: 2 });
    }

    #[test]
    fn bool_rejects_other_words() {
        let mut r = XdrReader::new(&[0, 0, 0, 2]);
        assert_eq!(r.get_bool().unwrap_err(), XdrError::InvalidBool(2));
    }

    #[test]
    fn opaque_rejects_nonzero_padding() {
        // length 1, byte 0xAA, padding 0x01 0x00 0x00 — invalid.
        let mut r = XdrReader::new(&[0, 0, 0, 1, 0xAA, 1, 0, 0]);
        assert_eq!(r.get_opaque().unwrap_err(), XdrError::NonZeroPadding);
    }

    #[test]
    fn length_limit_is_enforced() {
        let mut r = XdrReader::with_length_limit(&[0xff, 0xff, 0xff, 0xff], 16);
        let err = r.get_opaque().unwrap_err();
        assert!(matches!(err, XdrError::LengthOverflow { declared: 0xffff_ffff, limit: 16 }));
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut r = XdrReader::new(&[0, 0, 0, 2, 0xC3, 0x28, 0, 0]);
        assert_eq!(r.get_string().unwrap_err(), XdrError::InvalidUtf8);
    }

    #[test]
    fn position_tracks_consumption() {
        let mut r = XdrReader::new(&[0, 0, 0, 1, 0, 0, 0, 2]);
        assert_eq!(r.position(), 0);
        r.get_u32().unwrap();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    fn floats_round_trip_via_bits() {
        let expected = 2.5f32;
        let bytes = expected.to_bits().to_be_bytes();
        let mut r = XdrReader::new(&bytes);
        assert_eq!(r.get_f32().unwrap(), expected);
    }

    #[test]
    fn adversarial_opaque_length_is_rejected_up_front() {
        // Declared length 0xFFFF is under the default limit but the frame
        // only carries 4 more bytes; the prefix itself must be the error.
        let mut r = XdrReader::new(&[0, 0, 0xff, 0xff, 1, 2, 3, 4]);
        let err = r.get_opaque().unwrap_err();
        assert_eq!(err, XdrError::Truncated { needed: 0xffff, available: 4 });
        // Nothing past the prefix was consumed.
        assert_eq!(r.position(), 4);
    }

    #[test]
    fn adversarial_array_count_is_rejected_up_front() {
        // 8 declared elements fit the byte-count check (8 bytes remain) but
        // cannot fit 8 words; the reader must not hand callers a count they
        // would turn into a large reservation.
        let mut r = XdrReader::new(&[0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0]);
        let err = r.get_array_len().unwrap_err();
        assert_eq!(err, XdrError::Truncated { needed: 32, available: 8 });
    }

    #[test]
    fn limit_check_precedes_remaining_check() {
        // A wildly overlong prefix still reports LengthOverflow, not
        // Truncated, so operators can tell policy rejections from framing.
        let mut r = XdrReader::with_length_limit(&[0xff, 0xff, 0xff, 0xff], 16);
        assert!(matches!(r.get_opaque().unwrap_err(), XdrError::LengthOverflow { .. }));
    }
}
