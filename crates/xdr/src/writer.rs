use bytes::{BufMut, Bytes, BytesMut};

use crate::pad4;

/// Append-only XDR encoder.
///
/// All `put_*` methods keep the stream 4-byte aligned. `finish` hands back the
/// accumulated buffer as cheaply-cloneable [`Bytes`], which is what the
/// transport layer frames onto the wire.
#[derive(Debug, Default)]
pub struct XdrWriter {
    buf: BytesMut,
}

impl XdrWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: BytesMut::new() }
    }

    /// Creates a writer with `cap` bytes pre-reserved — use when the encoded
    /// size is predictable (e.g. fixed-size array payloads) to avoid regrowth.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: BytesMut::with_capacity(cap) }
    }

    /// Number of bytes encoded so far. Always a multiple of 4.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrows the bytes encoded so far without consuming the writer. Used
    /// when an already-encoded body must be embedded into an outer frame.
    pub fn peek(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        debug_assert_eq!(self.buf.len() % 4, 0, "XDR stream must stay 4-byte aligned");
        self.buf.freeze()
    }

    /// Encodes an unsigned 32-bit integer.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Encodes a signed 32-bit integer (two's complement).
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.buf.put_i32(v);
    }

    /// Encodes an unsigned 64-bit hyper integer.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Encodes a signed 64-bit hyper integer.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Encodes an IEEE-754 single-precision float.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32(v);
    }

    /// Encodes an IEEE-754 double-precision float.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64(v);
    }

    /// Encodes a boolean as a full word (0 or 1), per RFC 4506 §4.4.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Encodes variable-length opaque data: length word, bytes, zero padding
    /// to the next 4-byte boundary.
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_fixed_opaque(data);
    }

    /// Encodes fixed-length opaque data (no length prefix), padded to 4 bytes.
    /// The decoder must know the length out of band.
    pub fn put_fixed_opaque(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        for _ in 0..pad4(data.len()) {
            self.buf.put_u8(0);
        }
    }

    /// Encodes a UTF-8 string as length-prefixed opaque bytes.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Encodes an array length prefix. Callers then encode `n` elements.
    #[inline]
    pub fn put_array_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }

    /// Encodes a trailing extension: a version word plus an opaque payload.
    /// Pairs with [`XdrReader::get_trailing_extension`](crate::XdrReader::get_trailing_extension);
    /// must be the last field of the message.
    pub fn put_trailing_extension(&mut self, version: u32, payload: &[u8]) {
        self.put_u32(version);
        self.put_opaque(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_big_endian_words() {
        let mut w = XdrWriter::new();
        w.put_u32(0x0102_0304);
        w.put_i32(-1);
        w.put_bool(true);
        let b = w.finish();
        assert_eq!(&b[..], &[1, 2, 3, 4, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1]);
    }

    #[test]
    fn opaque_is_padded_with_zeros() {
        let mut w = XdrWriter::new();
        w.put_opaque(b"abcde");
        let b = w.finish();
        assert_eq!(&b[..], &[0, 0, 0, 5, b'a', b'b', b'c', b'd', b'e', 0, 0, 0]);
    }

    #[test]
    fn fixed_opaque_multiple_of_four_gets_no_padding() {
        let mut w = XdrWriter::new();
        w.put_fixed_opaque(&[9, 8, 7, 6]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn hyper_encoding() {
        let mut w = XdrWriter::new();
        w.put_u64(0x0102_0304_0506_0708);
        w.put_i64(-2);
        let b = w.finish();
        assert_eq!(&b[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&b[8..], &[0xff; 8][..7].iter().chain(&[0xfeu8]).copied().collect::<Vec<_>>()[..]);
    }

    #[test]
    fn with_capacity_does_not_change_contents() {
        let mut w = XdrWriter::with_capacity(64);
        w.put_string("hi");
        let b = w.finish();
        assert_eq!(&b[..], &[0, 0, 0, 2, b'h', b'i', 0, 0]);
    }
}
