//! XDR-style external data representation for Open HPC++.
//!
//! The paper's TCP protocol object "uses XDR for data encoding"; this crate
//! implements the subset of RFC 4506 the ORB needs:
//!
//! * all primitive items occupy a multiple of 4 bytes, big-endian;
//! * opaque data and strings are length-prefixed and padded to 4 bytes;
//! * arrays are a length word followed by the encoded elements;
//! * optionals are a boolean discriminant followed by the value.
//!
//! The API is split into a streaming [`XdrWriter`]/[`XdrReader`] pair and the
//! derive-style traits [`XdrEncode`]/[`XdrDecode`] implemented for the common
//! primitive, container, and tuple types.
//!
//! # Example
//!
//! ```
//! use ohpc_xdr::{XdrWriter, XdrReader, XdrEncode, XdrDecode};
//!
//! let mut w = XdrWriter::new();
//! (42u32, String::from("weather"), vec![1i32, -2, 3]).encode(&mut w);
//! let buf = w.finish();
//!
//! let mut r = XdrReader::new(&buf);
//! let v = <(u32, String, Vec<i32>)>::decode(&mut r).unwrap();
//! assert_eq!(v, (42, "weather".to_string(), vec![1, -2, 3]));
//! assert!(r.is_empty());
//! ```

#![warn(missing_docs)]

mod error;
mod macros;
mod reader;
mod traits;
mod writer;

pub use error::XdrError;
pub use reader::XdrReader;
pub use traits::{XdrDecode, XdrEncode};
pub use writer::XdrWriter;

/// Round-trips a value through the codec; convenience for tests and for
/// one-shot encodes such as capability metadata blocks.
pub fn encode_to_vec<T: XdrEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = XdrWriter::new();
    value.encode(&mut w);
    w.finish().to_vec()
}

/// Decodes a single value from `buf`, requiring that every byte is consumed.
pub fn decode_from_slice<T: XdrDecode>(buf: &[u8]) -> Result<T, XdrError> {
    let mut r = XdrReader::new(buf);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(XdrError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// Number of padding bytes needed to round `len` up to a 4-byte boundary.
#[inline]
pub const fn pad4(len: usize) -> usize {
    (4 - (len & 3)) & 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad4_boundaries() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 3);
        assert_eq!(pad4(2), 2);
        assert_eq!(pad4(3), 1);
        assert_eq!(pad4(4), 0);
        assert_eq!(pad4(5), 3);
    }

    #[test]
    fn trailing_extension_roundtrip_and_absence() {
        // A frame with the extension appended after its last field.
        let mut w = XdrWriter::new();
        7u32.encode(&mut w);
        w.put_trailing_extension(1, b"ctx");
        let buf = w.finish();
        let mut r = XdrReader::new(&buf);
        assert_eq!(r.get_u32().unwrap(), 7);
        let ext = r.get_trailing_extension().unwrap();
        assert_eq!(ext, Some((1, &b"ctx"[..])));
        assert!(r.is_empty(), "extension consumes to end of input");

        // A legacy frame without it: same prefix, no extension bytes.
        let legacy = encode_to_vec(&7u32);
        let mut r = XdrReader::new(&legacy);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_trailing_extension().unwrap(), None);
    }

    #[test]
    fn trailing_extension_truncation_is_an_error_not_none() {
        // Version word present but payload cut off: a corrupt frame must
        // surface as Truncated, not be mistaken for a legacy frame.
        let mut w = XdrWriter::new();
        w.put_trailing_extension(1, b"payload");
        let buf = w.finish();
        let mut r = XdrReader::new(&buf[..buf.len() - 4]);
        assert!(r.get_trailing_extension().is_err());
    }

    #[test]
    fn decode_rejects_trailing() {
        let mut w = XdrWriter::new();
        7u32.encode(&mut w);
        8u32.encode(&mut w);
        let buf = w.finish();
        let err = decode_from_slice::<u32>(&buf).unwrap_err();
        assert!(matches!(err, XdrError::TrailingBytes(4)));
    }
}
