use bytes::Bytes;

use crate::{XdrError, XdrReader, XdrWriter};

/// A value that can be encoded into an XDR stream.
pub trait XdrEncode {
    /// Appends the XDR encoding of `self` to `w`.
    fn encode(&self, w: &mut XdrWriter);
}

/// A value that can be decoded from an XDR stream.
pub trait XdrDecode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError>;
}

macro_rules! impl_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl XdrEncode for $t {
            #[inline]
            fn encode(&self, w: &mut XdrWriter) {
                w.$put(*self);
            }
        }
        impl XdrDecode for $t {
            #[inline]
            fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
                r.$get()
            }
        }
    };
}

impl_prim!(u32, put_u32, get_u32);
impl_prim!(i32, put_i32, get_i32);
impl_prim!(u64, put_u64, get_u64);
impl_prim!(i64, put_i64, get_i64);
impl_prim!(f32, put_f32, get_f32);
impl_prim!(f64, put_f64, get_f64);
impl_prim!(bool, put_bool, get_bool);

// Smaller integers travel as full words, per XDR convention.
impl XdrEncode for u8 {
    #[inline]
    fn encode(&self, w: &mut XdrWriter) {
        w.put_u32(*self as u32);
    }
}
impl XdrDecode for u8 {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let v = r.get_u32()?;
        u8::try_from(v).map_err(|_| XdrError::custom(format!("u8 out of range: {v}")))
    }
}
impl XdrEncode for u16 {
    #[inline]
    fn encode(&self, w: &mut XdrWriter) {
        w.put_u32(*self as u32);
    }
}
impl XdrDecode for u16 {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let v = r.get_u32()?;
        u16::try_from(v).map_err(|_| XdrError::custom(format!("u16 out of range: {v}")))
    }
}

impl XdrEncode for str {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_string(self);
    }
}

impl XdrEncode for String {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_string(self);
    }
}

impl XdrDecode for String {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        r.get_string()
    }
}

/// `Vec<u8>` / `Bytes` are treated as opaque byte blobs, *not* as arrays of
/// word-encoded u8 — this is what keeps big payloads compact (the paper's
/// arrays-of-int workload encodes ints as words, but raw buffers travel 1:1).
impl XdrEncode for Vec<u8> {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_opaque(self);
    }
}

impl XdrDecode for Vec<u8> {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(r.get_opaque()?.to_vec())
    }
}

impl XdrEncode for Bytes {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_opaque(self);
    }
}

impl XdrDecode for Bytes {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(Bytes::copy_from_slice(r.get_opaque()?))
    }
}

impl XdrEncode for [u8] {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_opaque(self);
    }
}

/// Generic arrays: length word + elements.
impl XdrEncode for Vec<i32> {
    fn encode(&self, w: &mut XdrWriter) {
        w.put_array_len(self.len());
        for v in self {
            w.put_i32(*v);
        }
    }
}

impl XdrDecode for Vec<i32> {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        let n = r.get_array_len()?;
        // A length prefix can claim at most remaining/4 elements; clamp the
        // pre-reservation so a lying prefix cannot force a huge allocation.
        let mut out = Vec::with_capacity(n.min(r.remaining() / 4));
        for _ in 0..n {
            out.push(r.get_i32()?);
        }
        Ok(out)
    }
}

macro_rules! impl_vec {
    ($t:ty) => {
        impl XdrEncode for Vec<$t> {
            fn encode(&self, w: &mut XdrWriter) {
                w.put_array_len(self.len());
                for v in self {
                    v.encode(w);
                }
            }
        }
        impl XdrDecode for Vec<$t> {
            fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
                let n = r.get_array_len()?;
                let mut out = Vec::with_capacity(n.min(r.remaining() / 4));
                for _ in 0..n {
                    out.push(<$t>::decode(r)?);
                }
                Ok(out)
            }
        }
    };
}

impl_vec!(u32);
impl_vec!(u64);
impl_vec!(i64);
impl_vec!(f32);
impl_vec!(f64);
impl_vec!(String);

impl<T: XdrEncode> XdrEncode for Option<T> {
    fn encode(&self, w: &mut XdrWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.encode(w);
            }
        }
    }
}

impl<T: XdrDecode> XdrDecode for Option<T> {
    fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        if r.get_bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl XdrEncode for () {
    fn encode(&self, _w: &mut XdrWriter) {}
}

impl XdrDecode for () {
    fn decode(_r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: XdrEncode),+> XdrEncode for ($($name,)+) {
            fn encode(&self, w: &mut XdrWriter) {
                $(self.$idx.encode(w);)+
            }
        }
        impl<$($name: XdrDecode),+> XdrDecode for ($($name,)+) {
            fn decode(r: &mut XdrReader<'_>) -> Result<Self, XdrError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<T: XdrEncode + ?Sized> XdrEncode for &T {
    fn encode(&self, w: &mut XdrWriter) {
        (*self).encode(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};

    fn roundtrip<T: XdrEncode + XdrDecode + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode_to_vec(&v);
        assert_eq!(buf.len() % 4, 0, "stream must stay aligned");
        let back: T = decode_from_slice(&buf).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f32);
        roundtrip(-2.25f64);
        roundtrip(255u8);
        roundtrip(65535u16);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(String::from("open hpc++"));
        roundtrip(String::new());
        roundtrip(vec![1i32, -2, 3]);
        roundtrip(Vec::<i32>::new());
        roundtrip(vec![0u8, 1, 2, 3, 4]);
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec!["a".to_string(), String::new(), "ccc".to_string()]);
        roundtrip((1u32, String::from("x"), vec![9i32]));
    }

    #[test]
    fn u8_decode_rejects_out_of_range_word() {
        let buf = encode_to_vec(&300u32);
        assert!(decode_from_slice::<u8>(&buf).is_err());
    }

    #[test]
    fn bytes_roundtrip_as_opaque() {
        let b = Bytes::from_static(b"hello world");
        let buf = encode_to_vec(&b);
        // 4-byte length + 11 bytes + 1 pad
        assert_eq!(buf.len(), 16);
        let back: Bytes = decode_from_slice(&buf).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn lying_length_prefix_fails_without_huge_alloc() {
        // claims 2^20 i32s but supplies none
        let buf = encode_to_vec(&(1u32 << 20));
        let err = decode_from_slice::<Vec<i32>>(&buf).unwrap_err();
        assert!(matches!(err, XdrError::Truncated { .. }));
    }

    #[test]
    fn int_array_wire_size_matches_xdr() {
        // n ints encode to 4 + 4n bytes
        let v = vec![7i32; 25];
        assert_eq!(encode_to_vec(&v).len(), 4 + 100);
    }
}
