use std::fmt;

/// Errors produced while decoding XDR data.
///
/// Encoding is infallible (the writer grows its buffer); every decode entry
/// point returns `Result<_, XdrError>` because the bytes may come off the
/// wire from an untrusted or corrupted peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The reader ran out of bytes: needed `needed`, only `available` left.
    Truncated {
        /// Bytes the decode step required.
        needed: usize,
        /// Bytes remaining in the input.
        available: usize,
    },
    /// A length prefix exceeded the decoder's sanity limit.
    LengthOverflow {
        /// Length the prefix declared.
        declared: u64,
        /// The configured limit.
        limit: u64,
    },
    /// A boolean discriminant was neither 0 nor 1.
    InvalidBool(u32),
    /// An enum discriminant had no matching variant.
    InvalidDiscriminant(u32),
    /// String bytes were not valid UTF-8.
    InvalidUtf8,
    /// Padding bytes were non-zero (tolerated by some XDR decoders; we reject
    /// so that the representation is canonical and MACs are unambiguous).
    NonZeroPadding,
    /// `decode_from_slice` finished with bytes left over.
    TrailingBytes(usize),
    /// Free-form error raised by a user `XdrDecode` implementation.
    Custom(String),
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated { needed, available } => {
                write!(f, "truncated XDR data: needed {needed} bytes, {available} available")
            }
            XdrError::LengthOverflow { declared, limit } => {
                write!(f, "XDR length {declared} exceeds limit {limit}")
            }
            XdrError::InvalidBool(v) => write!(f, "invalid XDR boolean {v}"),
            XdrError::InvalidDiscriminant(v) => write!(f, "invalid XDR discriminant {v}"),
            XdrError::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            XdrError::NonZeroPadding => write!(f, "non-zero XDR padding bytes"),
            XdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after XDR value"),
            XdrError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for XdrError {}

impl XdrError {
    /// Builds a [`XdrError::Custom`] from anything displayable.
    pub fn custom(msg: impl fmt::Display) -> Self {
        XdrError::Custom(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = XdrError::Truncated { needed: 8, available: 3 };
        assert_eq!(e.to_string(), "truncated XDR data: needed 8 bytes, 3 available");
        assert_eq!(XdrError::InvalidBool(7).to_string(), "invalid XDR boolean 7");
        assert_eq!(XdrError::custom("boom").to_string(), "boom");
    }
}
