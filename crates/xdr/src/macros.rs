//! Declarative XDR codecs for user structs and enums.

/// Implements [`XdrEncode`](crate::XdrEncode) and
/// [`XdrDecode`](crate::XdrDecode) for a struct, field by field in
/// declaration order — the XDR convention for records.
///
/// ```
/// use ohpc_xdr::{xdr_struct, encode_to_vec, decode_from_slice};
///
/// xdr_struct! {
///     /// A gridded observation.
///     #[derive(Debug, Clone, PartialEq)]
///     pub struct Observation {
///         pub region: String,
///         pub samples: Vec<f64>,
///         pub quality: u32,
///     }
/// }
///
/// let obs = Observation { region: "midwest".into(), samples: vec![1.0], quality: 3 };
/// let bytes = encode_to_vec(&obs);
/// assert_eq!(decode_from_slice::<Observation>(&bytes).unwrap(), obs);
/// ```
#[macro_export]
macro_rules! xdr_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $fvis:vis $field:ident : $ty:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $fvis $field: $ty, )+
        }

        impl $crate::XdrEncode for $name {
            fn encode(&self, w: &mut $crate::XdrWriter) {
                $( <$ty as $crate::XdrEncode>::encode(&self.$field, w); )+
            }
        }

        impl $crate::XdrDecode for $name {
            fn decode(r: &mut $crate::XdrReader<'_>) -> Result<Self, $crate::XdrError> {
                Ok(Self {
                    $( $field: <$ty as $crate::XdrDecode>::decode(r)?, )+
                })
            }
        }
    };
}

/// Implements the codec traits for a C-like enum with explicit `u32`
/// discriminants (RFC 4506 enums).
///
/// ```
/// use ohpc_xdr::{xdr_enum, encode_to_vec, decode_from_slice};
///
/// xdr_enum! {
///     #[derive(Debug, Clone, Copy, PartialEq)]
///     pub enum Quality {
///         Raw = 0,
///         Calibrated = 1,
///         Validated = 2,
///     }
/// }
///
/// let bytes = encode_to_vec(&Quality::Calibrated);
/// assert_eq!(decode_from_slice::<Quality>(&bytes).unwrap(), Quality::Calibrated);
/// assert!(decode_from_slice::<Quality>(&encode_to_vec(&9u32)).is_err());
/// ```
#[macro_export]
macro_rules! xdr_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $( $variant:ident = $value:literal ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis enum $name {
            $( $variant = $value, )+
        }

        impl $crate::XdrEncode for $name {
            fn encode(&self, w: &mut $crate::XdrWriter) {
                w.put_u32(*self as u32);
            }
        }

        impl $crate::XdrDecode for $name {
            fn decode(r: &mut $crate::XdrReader<'_>) -> Result<Self, $crate::XdrError> {
                match r.get_u32()? {
                    $( $value => Ok($name::$variant), )+
                    other => Err($crate::XdrError::InvalidDiscriminant(other)),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{decode_from_slice, encode_to_vec};

    xdr_struct! {
        #[derive(Debug, Clone, PartialEq)]
        pub struct Reading {
            pub station: String,
            pub values: Vec<f64>,
            pub flags: u32,
        }
    }

    xdr_struct! {
        #[derive(Debug, Clone, PartialEq)]
        struct Nested {
            inner: Reading,
            count: u64,
            tag: Option<String>,
        }
    }

    xdr_enum! {
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub enum Units {
            Kelvin = 0,
            Celsius = 1,
            Fahrenheit = 5,
        }
    }

    #[test]
    fn struct_roundtrip() {
        let r = Reading { station: "KIND".into(), values: vec![1.5, -2.5], flags: 7 };
        let bytes = encode_to_vec(&r);
        assert_eq!(decode_from_slice::<Reading>(&bytes).unwrap(), r);
    }

    #[test]
    fn nested_struct_roundtrip() {
        let n = Nested {
            inner: Reading { station: "S".into(), values: vec![], flags: 0 },
            count: 1 << 40,
            tag: Some("x".into()),
        };
        let bytes = encode_to_vec(&n);
        assert_eq!(decode_from_slice::<Nested>(&bytes).unwrap(), n);
    }

    #[test]
    fn enum_roundtrip_and_bad_discriminant() {
        for u in [Units::Kelvin, Units::Celsius, Units::Fahrenheit] {
            assert_eq!(decode_from_slice::<Units>(&encode_to_vec(&u)).unwrap(), u);
        }
        // 2 is not a declared discriminant (values are 0, 1, 5)
        assert!(decode_from_slice::<Units>(&encode_to_vec(&2u32)).is_err());
    }

    #[test]
    fn truncated_struct_fails_cleanly() {
        let r = Reading { station: "KIND".into(), values: vec![1.0], flags: 1 };
        let bytes = encode_to_vec(&r);
        assert!(decode_from_slice::<Reading>(&bytes[..bytes.len() - 4]).is_err());
    }
}
