//! HMAC-SHA-256 per RFC 2104 / FIPS 198-1.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Initializes the MAC with `key` (any length; long keys are hashed).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            k[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self { inner, opad_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(msg);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"open-hpc++-psk";
        let msg: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        let mut mac = HmacSha256::new(key);
        mac.update(&msg[..100]);
        mac.update(&msg[100..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, &msg));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
