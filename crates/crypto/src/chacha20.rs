//! ChaCha20 stream cipher per RFC 8439 §2.3–2.4.

/// ChaCha20 keystream generator / cipher.
///
/// Encryption and decryption are the same XOR operation; the encryption
/// capability stores the key and sends the 12-byte nonce in the glue header.
pub struct ChaCha20 {
    state: [u32; 16],
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]; // "expand 32-byte k"

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key, 96-bit nonce and initial counter.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        Self { state }
    }

    #[inline(always)]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        let mut working = self.state;
        working[12] = counter;
        let initial = working;
        for _ in 0..10 {
            // column rounds
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data` in place, starting at the cipher's
    /// initial counter. Apply twice with the same key/nonce to decrypt.
    pub fn apply(&self, data: &mut [u8]) {
        let mut counter = self.state[12];
        for chunk in data.chunks_mut(64) {
            let ks = self.block(counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

/// One-shot in-place XOR encryption/decryption.
pub fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key = rfc_key();
        let nonce = [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block(1);
        assert_eq!(&block[..8], &[0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15]);
        assert_eq!(&block[56..], &[0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e]);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key = rfc_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(
            &data[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd,
                0x0d, 0x69, 0x81
            ]
        );
        assert_eq!(data.len(), plaintext.len());
        // decrypt
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(&data[..], &plaintext[..]);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = rfc_key();
        let nonce = [7u8; 12];
        for n in [0usize, 1, 63, 64, 65, 128, 1000] {
            let original: Vec<u8> = (0..n).map(|i| (i * 31 % 256) as u8).collect();
            let mut data = original.clone();
            chacha20_xor(&key, &nonce, 0, &mut data);
            if n > 0 {
                assert_ne!(data, original, "ciphertext must differ (n={n})");
            }
            chacha20_xor(&key, &nonce, 0, &mut data);
            assert_eq!(data, original, "roundtrip failed (n={n})");
        }
    }

    #[test]
    fn different_nonces_produce_different_ciphertext() {
        let key = rfc_key();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[1u8; 12], 0, &mut a);
        chacha20_xor(&key, &[2u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_offsets_keystream() {
        let key = rfc_key();
        let nonce = [3u8; 12];
        let mut two_blocks = vec![0u8; 128];
        chacha20_xor(&key, &nonce, 0, &mut two_blocks);
        let mut second = vec![0u8; 64];
        chacha20_xor(&key, &nonce, 1, &mut second);
        assert_eq!(&two_blocks[64..], &second[..]);
    }
}
