//! Cryptographic primitives backing the Open HPC++ security and
//! authentication capabilities.
//!
//! The paper leaves the mechanisms unspecified ("encrypts the data
//! transferred", "authenticate themselves for each remote request"); we
//! implement period-appropriate, well-specified primitives from scratch so the
//! capability chain pays a *real* cryptographic cost on the wire path:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256
//! * [`hmac`] — RFC 2104 HMAC-SHA-256, used for per-request authentication
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher, used by the encryption
//!   capability
//! * [`ct_eq`] — constant-time comparison for MAC verification
//! * [`KeyStore`] — a named pre-shared-key store standing in for the site
//!   key-distribution infrastructure the paper assumes
//!
//! None of this is intended to compete with audited crypto crates; it exists
//! because the reproduction must be dependency-light and the evaluation only
//! needs representative per-byte cost plus correct round-trips.

#![warn(missing_docs)]

mod chacha20;
mod hmac;
mod keys;
mod sha256;

pub use chacha20::{chacha20_xor, ChaCha20};
pub use hmac::{hmac_sha256, HmacSha256};
pub use keys::{KeyId, KeyStore};
pub use sha256::{sha256, Sha256, DIGEST_LEN};

/// Compares two byte strings in constant time (with respect to content; the
/// length check is allowed to early-exit because lengths are public).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
