//! A named pre-shared-key store.
//!
//! Stands in for the site key-distribution infrastructure (Kerberos/ssh keys
//! in 1999 terms) that the paper assumes exists between the national lab and
//! its clients. Capabilities reference keys by [`KeyId`] so that the key
//! material itself never travels inside an Object Reference.

use std::collections::HashMap;
use std::sync::Arc;

use crate::sha256;

/// Identifies a key within a [`KeyStore`]. Derived from the key name so both
/// sides of a connection agree on ids without exchanging them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl KeyId {
    /// Derives the id for a key name (first 8 bytes of SHA-256 of the name).
    pub fn from_name(name: &str) -> Self {
        let d = sha256(name.as_bytes());
        KeyId(u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]))
    }
}

/// Immutable snapshot-style key store; cheaply cloneable via `Arc`.
#[derive(Debug, Clone, Default)]
pub struct KeyStore {
    keys: HashMap<KeyId, Arc<[u8; 32]>>,
}

impl KeyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a key under `name`, deriving 32 bytes of key material from the
    /// passphrase with a single SHA-256 (sufficient for simulation purposes).
    pub fn add_key(&mut self, name: &str, passphrase: &[u8]) -> KeyId {
        let id = KeyId::from_name(name);
        let mut material = Vec::with_capacity(name.len() + passphrase.len() + 1);
        material.extend_from_slice(name.as_bytes());
        material.push(0);
        material.extend_from_slice(passphrase);
        self.keys.insert(id, Arc::new(sha256(&material)));
        id
    }

    /// Inserts raw 32-byte key material under `name`.
    pub fn add_raw_key(&mut self, name: &str, key: [u8; 32]) -> KeyId {
        let id = KeyId::from_name(name);
        self.keys.insert(id, Arc::new(key));
        id
    }

    /// Looks a key up by id.
    pub fn get(&self, id: KeyId) -> Option<Arc<[u8; 32]>> {
        self.keys.get(&id).cloned()
    }

    /// Looks a key up by name.
    pub fn get_by_name(&self, name: &str) -> Option<Arc<[u8; 32]>> {
        self.get(KeyId::from_name(name))
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_id() {
        assert_eq!(KeyId::from_name("lab-key"), KeyId::from_name("lab-key"));
        assert_ne!(KeyId::from_name("lab-key"), KeyId::from_name("lab-key2"));
    }

    #[test]
    fn passphrase_derivation_is_deterministic() {
        let mut a = KeyStore::new();
        let mut b = KeyStore::new();
        let ida = a.add_key("k", b"secret");
        let idb = b.add_key("k", b"secret");
        assert_eq!(ida, idb);
        assert_eq!(a.get(ida).unwrap(), b.get(idb).unwrap());
    }

    #[test]
    fn different_passphrases_differ() {
        let mut s = KeyStore::new();
        s.add_key("a", b"one");
        let ka = s.get_by_name("a").unwrap();
        let mut s2 = KeyStore::new();
        s2.add_key("a", b"two");
        let ka2 = s2.get_by_name("a").unwrap();
        assert_ne!(ka, ka2);
    }

    #[test]
    fn name_passphrase_split_is_unambiguous() {
        // ("ab", "c") must not derive the same key as ("a", "bc").
        let mut s1 = KeyStore::new();
        s1.add_key("ab", b"c");
        let mut s2 = KeyStore::new();
        s2.add_key("a", b"bc");
        assert_ne!(s1.get_by_name("ab").unwrap(), s2.get_by_name("a").unwrap());
    }

    #[test]
    fn missing_key_is_none() {
        let s = KeyStore::new();
        assert!(s.get_by_name("nope").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn raw_key_roundtrip() {
        let mut s = KeyStore::new();
        let id = s.add_raw_key("raw", [9u8; 32]);
        assert_eq!(*s.get(id).unwrap(), [9u8; 32]);
        assert_eq!(s.len(), 1);
    }
}
