//! Naming service for Open HPC++.
//!
//! A registry maps names to serialized [`ObjectReference`]s. Because ORs
//! carry their protocol tables — including glue entries with capability
//! chains — binding a name *is* publishing a capability set, and looking one
//! up *is* receiving it: the paper's "capabilities can be exchanged between
//! processes" needs no extra machinery.
//!
//! The registry is itself a remote object (interface declared with
//! [`remote_interface!`]), so any process that can reach the registry's
//! context can bind and resolve. [`LocalRegistry`] is the embeddable
//! implementation; [`RegistryClient`] is the generated typed stub.

#![warn(missing_docs)]

use std::collections::HashMap;

use parking_lot::RwLock;

use ohpc_orb::remote_interface;
use ohpc_orb::{ObjectReference, OrbError};

remote_interface! {
    type_name = "Registry";
    trait RegistryApi;
    skeleton RegistrySkeleton;
    client RegistryClient;
    fn bind(name: String, or_bytes: Vec<u8>) -> bool = 1;
    fn rebind(name: String, or_bytes: Vec<u8>) -> bool = 2;
    fn resolve(name: String) -> Vec<u8> = 3;
    fn unbind(name: String) -> bool = 4;
    fn list(prefix: String) -> Vec<String> = 5;
}

/// In-memory name table implementing [`RegistryApi`].
#[derive(Default)]
pub struct LocalRegistry {
    entries: RwLock<HashMap<String, Vec<u8>>>,
}

impl LocalRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct (non-remote) bind, for in-process publishers.
    pub fn bind_or(&self, name: &str, or: &ObjectReference) -> bool {
        let mut map = self.entries.write();
        if map.contains_key(name) {
            return false;
        }
        map.insert(name.to_string(), or.to_bytes());
        true
    }

    /// Direct (non-remote) resolve.
    pub fn resolve_or(&self, name: &str) -> Result<ObjectReference, OrbError> {
        let map = self.entries.read();
        let bytes = map
            .get(name)
            .ok_or_else(|| OrbError::Protocol(format!("no binding for '{name}'")))?;
        ObjectReference::from_bytes(bytes).map_err(OrbError::from)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no names are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

impl RegistryApi for LocalRegistry {
    fn bind(&self, name: String, or_bytes: Vec<u8>) -> Result<bool, String> {
        // Validate before storing: a registry full of garbage ORs is worse
        // than a failed bind.
        ObjectReference::from_bytes(&or_bytes).map_err(|e| format!("invalid OR: {e}"))?;
        let mut map = self.entries.write();
        if map.contains_key(&name) {
            return Ok(false);
        }
        map.insert(name, or_bytes);
        Ok(true)
    }

    fn rebind(&self, name: String, or_bytes: Vec<u8>) -> Result<bool, String> {
        ObjectReference::from_bytes(&or_bytes).map_err(|e| format!("invalid OR: {e}"))?;
        let replaced = self.entries.write().insert(name, or_bytes).is_some();
        Ok(replaced)
    }

    fn resolve(&self, name: String) -> Result<Vec<u8>, String> {
        self.entries
            .read()
            .get(&name)
            .cloned()
            .ok_or_else(|| format!("no binding for '{name}'"))
    }

    fn unbind(&self, name: String) -> Result<bool, String> {
        Ok(self.entries.write().remove(&name).is_some())
    }

    fn list(&self, prefix: String) -> Result<Vec<String>, String> {
        let mut names: Vec<String> = self
            .entries
            .read()
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        names.sort();
        Ok(names)
    }
}

/// Convenience on the typed stub: resolve straight to an [`ObjectReference`].
impl RegistryClient {
    /// Resolves `name` and decodes the OR.
    pub fn resolve_or(&self, name: &str) -> Result<ObjectReference, OrbError> {
        let bytes = self.resolve(name.to_string())?;
        ObjectReference::from_bytes(&bytes).map_err(OrbError::from)
    }

    /// Binds `or` under `name` (fails if taken).
    pub fn bind_or(&self, name: &str, or: &ObjectReference) -> Result<bool, OrbError> {
        self.bind(name.to_string(), or.to_bytes())
    }

    /// Binds or replaces `or` under `name`.
    pub fn rebind_or(&self, name: &str, or: &ObjectReference) -> Result<bool, OrbError> {
        self.rebind(name.to_string(), or.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ohpc_orb::{ObjectId, ProtocolId};
    use ohpc_orb::objref::ProtoEntry;
    use ohpc_netsim::Location;

    fn sample_or(n: u64) -> ObjectReference {
        ObjectReference {
            object: ObjectId(n),
            type_name: "Weather".into(),
            location: Location::new(1, 1),
            protocols: vec![ProtoEntry::endpoint(ProtocolId::TCP, format!("tcp://h:{n}"))],
        }
    }

    #[test]
    fn bind_resolve_roundtrip() {
        let reg = LocalRegistry::new();
        let or = sample_or(1);
        assert!(reg.bind_or("svc/weather", &or));
        assert_eq!(reg.resolve_or("svc/weather").unwrap(), or);
    }

    #[test]
    fn double_bind_rejected_rebind_allowed() {
        let reg = LocalRegistry::new();
        assert!(reg.bind_or("x", &sample_or(1)));
        assert!(!reg.bind_or("x", &sample_or(2)));
        assert_eq!(reg.resolve_or("x").unwrap().object, ObjectId(1));
        assert!(reg.rebind("x".into(), sample_or(2).to_bytes()).unwrap());
        assert_eq!(reg.resolve_or("x").unwrap().object, ObjectId(2));
    }

    #[test]
    fn resolve_missing_errors() {
        let reg = LocalRegistry::new();
        assert!(reg.resolve_or("ghost").is_err());
        assert!(reg.resolve("ghost".into()).is_err());
    }

    #[test]
    fn unbind_removes() {
        let reg = LocalRegistry::new();
        reg.bind_or("a", &sample_or(1));
        assert!(reg.unbind("a".into()).unwrap());
        assert!(!reg.unbind("a".into()).unwrap());
        assert!(reg.is_empty());
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let reg = LocalRegistry::new();
        reg.bind_or("svc/b", &sample_or(1));
        reg.bind_or("svc/a", &sample_or(2));
        reg.bind_or("other", &sample_or(3));
        assert_eq!(reg.list("svc/".into()).unwrap(), vec!["svc/a", "svc/b"]);
        assert_eq!(reg.list("".into()).unwrap().len(), 3);
    }

    #[test]
    fn garbage_or_rejected_at_bind() {
        let reg = LocalRegistry::new();
        assert!(reg.bind("bad".into(), vec![1, 2, 3]).is_err());
        assert!(reg.rebind("bad".into(), vec![]).is_err());
        assert!(reg.is_empty());
    }
}
