//! Round-trip identity and corruption-safety properties for both codecs.

use ohpc_compress::{decompress_any, Codec, Lzss, Rle};
use proptest::prelude::*;

fn arb_data() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // arbitrary bytes
        proptest::collection::vec(any::<u8>(), 0..2048),
        // runs of a few distinct bytes — RLE/LZSS-friendly
        proptest::collection::vec(0u8..4, 0..2048),
        // repeated phrases
        (proptest::collection::vec(any::<u8>(), 1..32), 1usize..64)
            .prop_map(|(phrase, n)| phrase.repeat(n)),
    ]
}

proptest! {
    #[test]
    fn rle_roundtrip(data in arb_data()) {
        let packed = Rle.compress(&data);
        prop_assert_eq!(Rle.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in arb_data()) {
        let packed = Lzss.compress(&data);
        prop_assert_eq!(Lzss.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn decompress_any_matches_direct(data in arb_data()) {
        prop_assert_eq!(decompress_any(&Rle.compress(&data)).unwrap(), data.clone());
        prop_assert_eq!(decompress_any(&Lzss.compress(&data)).unwrap(), data);
    }

    /// Decompressing arbitrary garbage must never panic or allocate unbounded.
    #[test]
    fn fuzz_decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Rle.decompress(&data);
        let _ = Lzss.decompress(&data);
        let _ = decompress_any(&data);
    }

    /// Single-byte corruption is either detected or decodes to *something*
    /// without panicking (the format has no checksum; the MAC capability is
    /// what provides integrity end-to-end).
    #[test]
    fn corrupted_stream_never_panics(data in arb_data(), idx: prop::sample::Index, bit in 0u8..8) {
        for packed in [Rle.compress(&data), Lzss.compress(&data)] {
            let mut bad = packed.clone();
            let i = idx.index(bad.len());
            bad[i] ^= 1 << bit;
            let _ = decompress_any(&bad);
        }
    }
}
