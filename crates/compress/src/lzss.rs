//! LZSS dictionary coder.
//!
//! Classic Storer–Szymanski variant: the stream after the common header is a
//! sequence of groups, each led by a flag byte whose bits (LSB first) say
//! whether the next item is a literal byte (`1`) or a back-reference (`0`).
//! A back-reference is 2 bytes: 12-bit offset (1-based distance) and 4-bit
//! length with [`MIN_MATCH`] bias, covering matches of 3..=18 bytes within a
//! 4 KiB window. A simple 3-byte hash-chain accelerates match search.

use crate::{read_header, write_header, Codec, CodecKind, CompressError};

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const HASH_SIZE: usize = 1 << 13;
/// How many chain links to follow per position; bounds worst-case compress time.
const MAX_CHAIN: usize = 64;

/// LZSS codec. The struct is stateless between calls; `Default` gives the
/// standard 4 KiB-window configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lzss;

#[inline]
fn hash3(a: u8, b: u8, c: u8) -> usize {
    let v = (a as u32) | ((b as u32) << 8) | ((c as u32) << 16);
    (v.wrapping_mul(2654435761) >> 19) as usize & (HASH_SIZE - 1)
}

impl Codec for Lzss {
    fn kind(&self) -> CodecKind {
        CodecKind::Lzss
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        write_header(&mut out, CodecKind::Lzss, input.len());

        // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
        let mut head = vec![usize::MAX; HASH_SIZE];
        let mut prev = vec![usize::MAX; WINDOW];

        let mut i = 0;
        let mut flag_pos = out.len();
        out.push(0);
        let mut flag_bit = 0u8;

        macro_rules! next_item {
            () => {
                if flag_bit == 8 {
                    flag_pos = out.len();
                    out.push(0);
                    flag_bit = 0;
                }
            };
        }

        while i < input.len() {
            next_item!();
            let mut best_len = 0usize;
            let mut best_off = 0usize;
            if i + MIN_MATCH <= input.len() {
                let h = hash3(input[i], input[i + 1], input[i + 2]);
                let mut cand = head[h];
                let mut chain = 0;
                while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                    let max_len = MAX_MATCH.min(input.len() - i);
                    let mut l = 0;
                    while l < max_len && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                    let nxt = prev[cand % WINDOW];
                    if nxt == usize::MAX || nxt >= cand {
                        break;
                    }
                    cand = nxt;
                    chain += 1;
                }
            }

            if best_len >= MIN_MATCH {
                // back-reference: offset-1 in 12 bits, len-MIN_MATCH in 4 bits
                let off = best_off - 1;
                let len = best_len - MIN_MATCH;
                out.push((off & 0xFF) as u8);
                out.push((((off >> 8) & 0x0F) as u8) << 4 | (len as u8));
                // insert all covered positions into the chains
                let end = i + best_len;
                while i < end {
                    insert(&mut head, &mut prev, input, i);
                    i += 1;
                }
            } else {
                out[flag_pos] |= 1 << flag_bit;
                out.push(input[i]);
                insert(&mut head, &mut prev, input, i);
                i += 1;
            }
            flag_bit += 1;
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let (kind, declared, payload) = read_header(input)?;
        if kind != CodecKind::Lzss {
            return Err(CompressError::UnknownCodec(input[0]));
        }
        let mut out = Vec::with_capacity(declared);
        let mut p = 0;
        'outer: while p < payload.len() {
            let flags = payload[p];
            p += 1;
            for bit in 0..8 {
                if out.len() == declared {
                    break 'outer;
                }
                if p >= payload.len() {
                    break 'outer;
                }
                if flags & (1 << bit) != 0 {
                    out.push(payload[p]);
                    p += 1;
                } else {
                    if p + 1 >= payload.len() {
                        return Err(CompressError::Truncated);
                    }
                    let b0 = payload[p] as usize;
                    let b1 = payload[p + 1] as usize;
                    p += 2;
                    let off = (b0 | ((b1 >> 4) << 8)) + 1;
                    let len = (b1 & 0x0F) + MIN_MATCH;
                    if off > out.len() {
                        return Err(CompressError::BadReference { offset: off, produced: out.len() });
                    }
                    let start = out.len() - off;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                if out.len() > declared {
                    return Err(CompressError::LengthMismatch { declared, actual: out.len() });
                }
            }
        }
        if out.len() != declared {
            return Err(CompressError::LengthMismatch { declared, actual: out.len() });
        }
        Ok(out)
    }
}

#[inline]
fn insert(head: &mut [usize], prev: &mut [usize], input: &[u8], i: usize) {
    if i + MIN_MATCH <= input.len() {
        let h = hash3(input[i], input[i + 1], input[i + 2]);
        prev[i % WINDOW] = head[h];
        head[h] = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = Lzss.compress(data);
        assert_eq!(Lzss.decompress(&packed).unwrap(), data, "len {}", data.len());
        packed.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let n = roundtrip(&data);
        assert!(n < data.len() / 3, "packed {n} of {}", data.len());
    }

    #[test]
    fn all_zeros() {
        // MAX_MATCH=18 bounds the ratio near 18/2.125 ≈ 8.5x
        let data = vec![0u8; 100_000];
        let n = roundtrip(&data);
        assert!(n < 12_000, "packed {n}");
    }

    #[test]
    fn overlapping_copy_is_handled() {
        // "aaaa..." forces offset-1 matches, the classic LZ overlap case.
        roundtrip(&[b'a'; 50]);
        // "ababab..." forces offset-2 overlap
        let data: Vec<u8> = (0..99).map(|i| if i % 2 == 0 { b'a' } else { b'b' }).collect();
        roundtrip(&data);
    }

    #[test]
    fn window_boundary_matches() {
        // repeat a 64-byte phrase at distance just inside / outside the window
        let phrase: Vec<u8> = (0..64u8).collect();
        for gap in [WINDOW - 100, WINDOW - 64, WINDOW + 10] {
            let mut data = phrase.clone();
            data.extend(std::iter::repeat_n(0xEE, gap));
            data.extend_from_slice(&phrase);
            roundtrip(&data);
        }
    }

    #[test]
    fn pseudo_random_data_roundtrips() {
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn bad_reference_detected() {
        // header declaring 10 bytes, then a group whose first item is a
        // back-reference with offset > produced bytes.
        let mut buf = Vec::new();
        write_header(&mut buf, CodecKind::Lzss, 10);
        buf.push(0b0000_0000); // all reference items
        buf.push(0x05); // offset low
        buf.push(0x00); // offset high nibble 0, len 0 (=3)
        assert!(matches!(
            Lzss.decompress(&buf).unwrap_err(),
            CompressError::BadReference { .. }
        ));
    }

    #[test]
    fn truncated_reference_detected() {
        let mut buf = Vec::new();
        write_header(&mut buf, CodecKind::Lzss, 10);
        buf.push(0b0000_0000);
        buf.push(0x05); // second ref byte missing
        assert_eq!(Lzss.decompress(&buf).unwrap_err(), CompressError::Truncated);
    }

    #[test]
    fn wrong_codec_tag_rejected() {
        let packed = crate::Rle.compress(b"xyz");
        assert!(matches!(Lzss.decompress(&packed).unwrap_err(), CompressError::UnknownCodec(1)));
    }

    #[test]
    fn int_array_workload_compresses() {
        // the fig5 workload: XDR-encoded array of small ints has 3 zero bytes
        // per element — exactly what the compression capability exploits.
        let mut data = Vec::new();
        for i in 0..4096i32 {
            data.extend_from_slice(&(i % 100).to_be_bytes());
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 2, "packed {n} of {}", data.len());
    }
}
