//! Compression codecs for the Open HPC++ compression capability.
//!
//! The paper motivates "data compression (and encryption)" as remote-access
//! attributes; this crate supplies two self-contained codecs the capability
//! can choose between:
//!
//! * [`rle`] — byte-level run-length encoding: trivial, fast, effective on
//!   the highly repetitive arrays used in the bandwidth experiments;
//! * [`lzss`] — an LZSS dictionary coder (4 KiB window) that also compresses
//!   non-run redundancy, standing in for the LZ-family codecs of the era.
//!
//! Both formats are self-describing (1-byte codec tag + original length) and
//! expose the common [`Codec`] interface. Round-trip identity for arbitrary
//! input is enforced with property tests.

#![warn(missing_docs)]

mod lzss;
mod rle;

pub use lzss::Lzss;
pub use rle::Rle;

use std::fmt;

/// Identifies a codec on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecKind {
    /// Run-length encoding.
    Rle = 1,
    /// LZSS with a 4 KiB sliding window.
    Lzss = 2,
}

impl CodecKind {
    /// Parses the codec tag byte.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(CodecKind::Rle),
            2 => Some(CodecKind::Lzss),
            _ => None,
        }
    }
}

/// Errors produced while decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Input ended in the middle of a token.
    Truncated,
    /// The header's codec tag was unknown.
    UnknownCodec(u8),
    /// Decompressed size did not match the header's declared size.
    LengthMismatch {
        /// Size the header promised.
        declared: usize,
        /// Size actually produced.
        actual: usize,
    },
    /// A back-reference pointed before the start of the output.
    BadReference {
        /// Back-reference distance.
        offset: usize,
        /// Output bytes produced so far.
        produced: usize,
    },
    /// The declared output size exceeds the safety limit.
    DeclaredTooLarge(usize),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::UnknownCodec(t) => write!(f, "unknown codec tag {t}"),
            CompressError::LengthMismatch { declared, actual } => {
                write!(f, "decompressed {actual} bytes, header declared {declared}")
            }
            CompressError::BadReference { offset, produced } => {
                write!(f, "back-reference offset {offset} with only {produced} bytes produced")
            }
            CompressError::DeclaredTooLarge(n) => {
                write!(f, "declared output size {n} exceeds limit")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Upper bound on declared decompressed size: matches the XDR length limit so
/// a corrupt header cannot force a giant allocation.
pub const MAX_DECLARED: usize = 64 << 20;

/// Common interface both codecs implement.
pub trait Codec {
    /// The codec's wire tag.
    fn kind(&self) -> CodecKind;
    /// Compresses `input` into a self-describing buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;
    /// Decompresses a buffer produced by [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError>;
}

/// Writes the common 5-byte header: codec tag + u32 little-endian length.
pub(crate) fn write_header(out: &mut Vec<u8>, kind: CodecKind, original_len: usize) {
    out.push(kind as u8);
    out.extend_from_slice(&(original_len as u32).to_le_bytes());
}

/// Parses the common header, returning (kind, declared_len, payload).
pub(crate) fn read_header(input: &[u8]) -> Result<(CodecKind, usize, &[u8]), CompressError> {
    if input.len() < 5 {
        return Err(CompressError::Truncated);
    }
    let kind = CodecKind::from_tag(input[0]).ok_or(CompressError::UnknownCodec(input[0]))?;
    let declared = u32::from_le_bytes([input[1], input[2], input[3], input[4]]) as usize;
    if declared > MAX_DECLARED {
        return Err(CompressError::DeclaredTooLarge(declared));
    }
    Ok((kind, declared, &input[5..]))
}

/// Decompresses a buffer from either codec by consulting its header tag.
pub fn decompress_any(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (kind, _, _) = read_header(input)?;
    match kind {
        CodecKind::Rle => Rle.decompress(input),
        CodecKind::Lzss => Lzss.decompress(input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_tags_roundtrip() {
        assert_eq!(CodecKind::from_tag(1), Some(CodecKind::Rle));
        assert_eq!(CodecKind::from_tag(2), Some(CodecKind::Lzss));
        assert_eq!(CodecKind::from_tag(0), None);
        assert_eq!(CodecKind::from_tag(255), None);
    }

    #[test]
    fn header_too_short() {
        assert_eq!(read_header(&[1, 0, 0]).unwrap_err(), CompressError::Truncated);
    }

    #[test]
    fn header_rejects_giant_declared_size() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(read_header(&buf).unwrap_err(), CompressError::DeclaredTooLarge(_)));
    }

    #[test]
    fn decompress_any_dispatches() {
        let data = b"aaaabbbbcccc".repeat(10);
        for c in [&Rle as &dyn Codec, &Lzss as &dyn Codec] {
            let packed = c.compress(&data);
            assert_eq!(decompress_any(&packed).unwrap(), data);
        }
    }
}
