//! Byte-level run-length encoding.
//!
//! Format after the common header: a sequence of tokens
//!
//! * `0x00..=0x7F` — literal run: token+1 literal bytes follow (1..=128);
//! * `0x80..=0xFF` — repeat run: one byte follows, repeated (token-0x7D)
//!   times (3..=130). Runs shorter than 3 are emitted as literals because a
//!   2-byte repeat token would not beat 2 literal bytes.

use crate::{read_header, write_header, Codec, CodecKind, CompressError};

/// Run-length codec (unit struct — stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

const MAX_LITERAL: usize = 128;
const MIN_RUN: usize = 3;
const MAX_RUN: usize = 130;

impl Codec for Rle {
    fn kind(&self) -> CodecKind {
        CodecKind::Rle
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 16);
        write_header(&mut out, CodecKind::Rle, input.len());

        let mut i = 0;
        let mut lit_start = 0;
        while i < input.len() {
            // measure run at i
            let b = input[i];
            let mut run = 1;
            while i + run < input.len() && input[i + run] == b && run < MAX_RUN {
                run += 1;
            }
            if run >= MIN_RUN {
                flush_literals(&mut out, &input[lit_start..i]);
                out.push((run - MIN_RUN + 0x80) as u8);
                out.push(b);
                i += run;
                lit_start = i;
            } else {
                i += run;
            }
        }
        flush_literals(&mut out, &input[lit_start..]);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CompressError> {
        let (kind, declared, mut payload) = read_header(input)?;
        if kind != CodecKind::Rle {
            return Err(CompressError::UnknownCodec(input[0]));
        }
        let mut out = Vec::with_capacity(declared);
        while !payload.is_empty() {
            let token = payload[0];
            payload = &payload[1..];
            if token < 0x80 {
                let n = token as usize + 1;
                if payload.len() < n {
                    return Err(CompressError::Truncated);
                }
                out.extend_from_slice(&payload[..n]);
                payload = &payload[n..];
            } else {
                let n = (token - 0x80) as usize + MIN_RUN;
                let Some((&b, rest)) = payload.split_first() else {
                    return Err(CompressError::Truncated);
                };
                payload = rest;
                out.resize(out.len() + n, b);
            }
            if out.len() > declared {
                return Err(CompressError::LengthMismatch { declared, actual: out.len() });
            }
        }
        if out.len() != declared {
            return Err(CompressError::LengthMismatch { declared, actual: out.len() });
        }
        Ok(out)
    }
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(MAX_LITERAL);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = Rle.compress(data);
        assert_eq!(Rle.decompress(&packed).unwrap(), data);
        packed.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), 5); // header only
    }

    #[test]
    fn all_same_byte_compresses_hard() {
        let data = vec![7u8; 10_000];
        let packed_len = roundtrip(&data);
        assert!(packed_len < data.len() / 20, "got {packed_len}");
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let packed = Rle.compress(&data);
        // worst case: one token byte per 128 literals + header
        assert!(packed.len() <= data.len() + data.len() / MAX_LITERAL + 6 + 5);
        assert_eq!(Rle.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn short_runs_stay_literal() {
        roundtrip(b"aabbccddee");
        roundtrip(b"aaabbbccc");
        roundtrip(b"a");
        roundtrip(b"ab");
    }

    #[test]
    fn max_run_boundary() {
        for n in [MAX_RUN - 1, MAX_RUN, MAX_RUN + 1, 2 * MAX_RUN, 2 * MAX_RUN + 1] {
            roundtrip(&vec![b'x'; n]);
        }
    }

    #[test]
    fn literal_chunk_boundary() {
        // alternating bytes so nothing runs; lengths around MAX_LITERAL
        for n in [MAX_LITERAL - 1, MAX_LITERAL, MAX_LITERAL + 1, 2 * MAX_LITERAL] {
            let data: Vec<u8> = (0..n).map(|i| (i % 2) as u8 + i as u8 % 5).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let packed = Rle.compress(&[1u8; 100]);
        for cut in 1..packed.len().min(8) {
            assert!(Rle.decompress(&packed[..packed.len() - cut]).is_err());
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let mut packed = Rle.compress(b"hello world, hello world");
        // corrupt declared length
        packed[1] ^= 0xFF;
        assert!(matches!(
            Rle.decompress(&packed).unwrap_err(),
            CompressError::LengthMismatch { .. } | CompressError::DeclaredTooLarge(_)
        ));
    }
}
