//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! `any::<T>()`, range and regex-pattern strategies, `collection::vec`,
//! `option::of`, `sample::Index`, `Just`, `prop_oneof!`, and the `proptest!`
//! macro with both `name: Type` and `pat in strategy` parameter forms.
//!
//! Differences from the real crate: no shrinking (a failing case reports the
//! seed and the assertion message instead of a minimized input), and regex
//! string strategies support the character-class subset actually used
//! (classes, ranges, `.`, `*`, `{m,n}`).

/// Pseudo-random source threaded through strategies (xoshiro256++).
pub mod rng {
    /// Deterministic-per-seed random generator for test case synthesis.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
        /// Seed this generator started from, echoed in failure messages.
        pub seed: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Builds from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
                seed,
            }
        }

        /// Builds from `PROPTEST_SEED` if set, otherwise wall-clock entropy,
        /// mixed with the test name so sibling tests draw distinct streams.
        pub fn from_env(test_name: &str) -> Self {
            let base = match std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok())
            {
                Some(s) => s,
                None => {
                    use std::time::{SystemTime, UNIX_EPOCH};
                    SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_nanos() as u64)
                        .unwrap_or(0xDEAD_BEEF)
                }
            };
            let mut h = base;
            for b in test_name.bytes() {
                h = splitmix64(&mut h) ^ u64::from(b);
            }
            Self::from_seed(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in `[lo, hi)`; `hi` must exceed `lo`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo) as u64) as usize
        }
    }
}

/// The strategy abstraction: a recipe for generating values of one type.
pub mod strategy {
    use crate::rng::TestRng;
    use std::rc::Rc;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy behind a cheaply-cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds recursive values: at each of `depth` levels the result is
        /// either a leaf (this strategy) or one `recurse` wrapping of the
        /// level below. `_desired_size` / `_expected_branch_size` are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// Type-erased, cheaply-cloneable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy producing one constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Regex-subset string strategy: `&'static str` patterns generate
    /// matching strings. Supports literals, `.`, `[...]` classes with
    /// ranges, and the `*` / `{m}` / `{m,n}` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }
}

/// Regex-pattern string generation (the subset the tests use).
pub mod string {
    use crate::rng::TestRng;

    enum Atom {
        /// `.` — any printable char, with occasional non-ASCII.
        Any,
        /// Literal character.
        Lit(char),
        /// Character class: inclusive ranges.
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Lit(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, 32)
                    }
                    '+' => {
                        i += 1;
                        (1, 32)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
                        match close {
                            Some(end) => {
                                let body: String = chars[i + 1..end].iter().collect();
                                i = end + 1;
                                match body.split_once(',') {
                                    Some((m, n)) => (
                                        m.trim().parse().unwrap_or(0),
                                        n.trim().parse().unwrap_or(32),
                                    ),
                                    None => {
                                        let m = body.trim().parse().unwrap_or(1);
                                        (m, m)
                                    }
                                }
                            }
                            None => (1, 1),
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            out.push(Piece { atom, min, max });
        }
        out
    }

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Any => {
                // Mostly printable ASCII, sometimes an arbitrary scalar value
                // so UTF-8 handling gets exercised.
                if rng.below(8) == 0 {
                    loop {
                        if let Some(c) = char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                            return c;
                        }
                    }
                } else {
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('?')
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
                let mut pick = rng.below(total.max(1));
                for (lo, hi) in ranges {
                    let span = *hi as u64 - *lo as u64 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= span;
                }
                ranges.first().map(|r| r.0).unwrap_or('?')
            }
        }
    }

    /// Generates a random string matching `pattern`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let n = if piece.max > piece.min {
                piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
            } else {
                piece.min
            };
            for _ in 0..n {
                out.push(gen_char(&piece.atom, rng));
            }
        }
        out
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Mix in boundary values now and then: edge cases are
                    // where codecs break.
                    match rng.below(16) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            loop {
                if let Some(c) = char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                    return c;
                }
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(33) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.below(4) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.next_u64())
        }
    }

    /// Strategy form of [`Arbitrary`]; what `any::<T>()` returns.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.end > self.size.start {
                rng.usize_in(self.size.start, self.size.end)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy for `Option<T>`; ~75% `Some`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` sometimes, `Some(value from s)` usually.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Wraps raw entropy.
        pub fn new(raw: u64) -> Self {
            Self(raw)
        }

        /// Projects onto `[0, len)`; panics if `len == 0` (as upstream does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index into an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Test-case plumbing: configuration, error type, RNG re-export.
pub mod test_runner {
    pub use crate::rng::TestRng;

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The input was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// `prop::collection`, `prop::sample`, … — alias for the crate root.
    pub use crate as prop;
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header and both parameter forms:
/// `name: Type` (uses `any::<Type>()`) and `pat in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_env(stringify!($name));
            let __seed = __rng.seed;
            for __case in 0..__cfg.cases {
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_bind!(__rng, $body, $($params)*);
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{} (seed {}): {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block,) => {
        $crate::__proptest_bind!($rng, $body)
    };
    ($rng:ident, $body:block) => {
        (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            #[allow(unreachable_code)]
            ::core::result::Result::Ok(())
        })()
    };
    ($rng:ident, $body:block, $name:ident: $ty:ty) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $body)
    }};
    ($rng:ident, $body:block, $name:ident: $ty:ty, $($rest:tt)*) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $body, $($rest)*)
    }};
    ($rng:ident, $body:block, $pat:pat in $strat:expr) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $body)
    }};
    ($rng:ident, $body:block, $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $body, $($rest)*)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #[test]
        fn typed_params_generate(v: u32, flag: bool, opt: Option<u64>) {
            let _ = (v, flag, opt);
            prop_assert!(true);
        }

        #[test]
        fn range_strategies_respect_bounds(a in 3u8..9, b in 0usize..1, c in -4i32..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert_eq!(b, 0);
            prop_assert!((-4..=4).contains(&c));
        }

        #[test]
        fn vec_and_pattern(s in "[a-z]{1,12}", v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_map_and_index(
            x in prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2), Just(3u32)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(x == 1 || x == 3 || (20..40).contains(&x));
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn recursive_depth_is_bounded(t in Just(Tree::Leaf(0)).boxed().prop_recursive(
            3, 8, 4,
            |inner| prop::collection::vec(inner, 1..3).prop_map(Tree::Node),
        )) {
            prop_assert!(depth(&t) <= 4, "tree too deep: {:?}", t);
        }

        #[test]
        fn printable_class_with_space(s in "[ -~]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::arbitrary::any::<u8>(), 0..64);
        let a: Vec<Vec<u8>> = {
            let mut rng = crate::rng::TestRng::from_seed(99);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = crate::rng::TestRng::from_seed(99);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
