//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! semantics the transports rely on: MPMC, clonable both sides, unbounded,
//! and disconnect detection when all peers on the other side are dropped.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_detected_both_ways() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn blocked_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        }

        #[test]
        fn blocked_recv_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(10));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }
}
