//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset the workspace uses: `RngCore`, `Rng::gen_range`
//! over integer and float ranges, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `thread_rng()`. The generator is xoshiro256++,
//! seeded through SplitMix64 — deterministic for a given seed, which is
//! what the network simulator's jitter reproducibility relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A type from which uniform samples can be drawn over a range.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + unit * (self.end() - self.start())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Random bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG from OS-ish entropy (time + ASLR here).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let stack_probe = 0u8;
    (t.as_nanos() as u64) ^ ((&stack_probe as *const u8 as u64).rotate_left(32))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — deterministic, fast, and plenty for simulation jitter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    /// Per-call RNG handed out by [`thread_rng`](super::thread_rng).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub use rngs::ThreadRng;

/// Returns a lazily-seeded RNG, freshly derived per call from thread-local
/// state (unlike the real crate this is not a shared handle, but every use
/// in the workspace treats it as single-shot).
pub fn thread_rng() -> ThreadRng {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    let seed = STATE.with(|s| {
        let mut v = s.get();
        if v == 0 {
            v = entropy_seed() | 1;
        }
        let out = splitmix64(&mut v);
        s.set(v);
        out
    });
    ThreadRng(rngs::StdRng::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_usable() {
        let mut t = thread_rng();
        let mut buf = [0u8; 8];
        t.fill_bytes(&mut buf);
        let _ = t.next_u32();
    }
}
