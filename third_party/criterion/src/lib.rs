//! Offline stand-in for `criterion`.
//!
//! Implements the bench-definition API the workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups, throughput,
//! `BenchmarkId`, `Bencher::iter`) with a simple warmup-then-measure timing
//! loop instead of criterion's statistical machinery. Results are printed as
//! `name ... time/iter (throughput)` lines; there is no HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `{function}/{parameter}`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { name: format!("{function}/{parameter}") }
    }

    /// Builds from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs ~40ms.
        let mut n: u64 = 1;
        let target = Duration::from_millis(40);
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(4) || n >= 1 << 28 {
                let per_iter = took.as_nanos() as f64 / n as f64;
                let measured = (target.as_nanos() as f64 / per_iter.max(0.1)).max(1.0) as u64;
                let start = Instant::now();
                for _ in 0..measured {
                    std::hint::black_box(routine());
                }
                self.ns_per_iter = start.elapsed().as_nanos() as f64 / measured as f64;
                self.iters = measured;
                return;
            }
            n = n.saturating_mul(8);
        }
    }

    /// Batched timing; setup cost is excluded per batch, not per iteration,
    /// which is close enough for this harness.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Batch sizing hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input batches.
    SmallInput,
    /// Large input batches.
    LargeInput,
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0, iters: 0 };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0, iters: 0 };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                let gib_s = n as f64 / b.ns_per_iter * 1e9 / (1u64 << 30) as f64;
                format!("  {gib_s:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                let me_s = n as f64 / b.ns_per_iter * 1e9 / 1e6;
                format!("  {me_s:.3} Melem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {} ns/iter ({} iters){rate}",
            self.name, b.ns_per_iter as u64, b.iters
        );
    }

    /// Ends the group (printing is immediate; nothing buffered).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0, iters: 0 };
        f(&mut b);
        println!("{id}: {} ns/iter ({} iters)", b.ns_per_iter as u64, b.iters);
        self
    }
}

/// Prevents the optimizer from discarding a value (re-export of std's).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes args; this harness runs all.
            $($group();)+
        }
    };
}
