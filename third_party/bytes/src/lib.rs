//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of the real `bytes` API that the workspace uses:
//! [`Bytes`] (a cheaply-cloneable, immutable byte buffer), [`BytesMut`]
//! (a growable builder that freezes into `Bytes`), and the [`BufMut`]
//! big-endian put methods used by the XDR encoder.
//!
//! Semantics match the real crate for everything exercised here; the
//! internal representation is simply an `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` from a static slice (copied here; the real crate
    /// borrows, but no caller observes the difference).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: Arc::from(bytes) }
    }

    /// Creates `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a new `Bytes` holding a copy of the given subrange.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { vec: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self { vec: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.vec.extend_from_slice(other);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.vec.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", &self.vec)
    }
}

/// Big-endian append methods, as on the real `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bytes_mut_puts_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0x01020304);
        m.put_u8(9);
        m.extend_from_slice(&[7, 8]);
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 3, 4, 9, 7, 8]);
    }

    #[test]
    fn slice_copies_subrange() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(&b.slice(1..3)[..], &[1, 2]);
        assert_eq!(&b.slice(..)[..], &b[..]);
    }
}
