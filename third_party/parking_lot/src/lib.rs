//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: guards come back directly from `lock`/`read`/`write`
//! (no `Result`), and poisoning is transparently ignored — matching
//! parking_lot's semantics where a panicking holder does not poison the lock.

use std::fmt;
use std::sync::{self, TryLockError};

/// Non-poisoning mutual exclusion, API-compatible with `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Non-poisoning reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
